//! Threshold-form BatchNorm + n-bit activation (paper §III-B3).
//!
//! FINN showed that BatchNorm followed by a 1-bit activation collapses into
//! a single threshold comparison. The paper extends this to n-bit uniform
//! activations: the activation's `2ⁿ` equal ranges have `2ⁿ−1` interior
//! endpoints; pulling those endpoints back through the (affine, monotone)
//! BatchNorm gives `2ⁿ−1` thresholds in the *pre-activation* domain, where
//! the convolution accumulator is an exact integer. The output code is then
//! found by a binary search over the ranges using an n-input comparator and
//! a 2ⁿ→1 multiplexer — here, `slice::partition_point`.

use crate::batchnorm::BnParams;

/// Uniform n-bit activation quantizer over the half-open range `[lo, hi)`
/// divided into `2ⁿ` equal ranges of size `d` (paper §III-B3).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QuantSpec {
    /// Number of activation bits (the paper uses 2; FINN comparison uses 1).
    pub bits: u32,
    /// Lower endpoint of the quantization range.
    pub lo: f32,
    /// Upper endpoint of the quantization range.
    pub hi: f32,
}

impl QuantSpec {
    /// Construct a spec.
    ///
    /// # Panics
    /// Panics unless `0 < bits ≤ 8` and `lo < hi`.
    pub fn new(bits: u32, lo: f32, hi: f32) -> Self {
        assert!((1..=8).contains(&bits), "activation bits must be in 1..=8, got {bits}");
        assert!(lo < hi, "empty quantization range [{lo}, {hi})");
        Self { bits, lo, hi }
    }

    /// The paper's configuration: 2-bit activations over `[0, 4)` so that
    /// codes coincide with values (`d = 1`).
    pub fn paper_2bit() -> Self {
        Self::new(2, 0.0, 4.0)
    }

    /// Binary activations (FINN comparison): one threshold, codes `{0, 1}`.
    pub fn binary() -> Self {
        Self::new(1, 0.0, 2.0)
    }

    /// Number of output levels `2ⁿ`.
    #[inline]
    pub fn levels(&self) -> u32 {
        1 << self.bits
    }

    /// Range size `d = (hi − lo) / 2ⁿ`.
    #[inline]
    pub fn d(&self) -> f32 {
        (self.hi - self.lo) / self.levels() as f32
    }

    /// Quantize a post-BatchNorm value to its code by locating its range,
    /// clamping outside values to the extreme codes.
    #[inline]
    pub fn quantize(&self, y: f32) -> u8 {
        let idx = ((y - self.lo) / self.d()).floor();
        idx.clamp(0.0, (self.levels() - 1) as f32) as u8
    }

    /// Interior range endpoints `lo + α·d` for α = 1 … 2ⁿ−1.
    pub fn endpoints(&self) -> impl Iterator<Item = f32> + '_ {
        (1..self.levels()).map(move |a| self.lo + a as f32 * self.d())
    }
}

/// Monotonicity of the fused BatchNorm map.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Direction {
    /// γ·i > 0: code counts thresholds `a ≥ Tα`.
    Increasing,
    /// γ·i < 0: code counts thresholds `a ≤ Tα`.
    Decreasing,
    /// γ·i = 0: BatchNorm is constant; code is fixed.
    Constant(u8),
}

/// One neuron's fused BatchNorm + n-bit activation, reduced to integer
/// thresholds on the convolution accumulator.
///
/// The hardware stores only two derived parameters per neuron (τ and
/// `d/(γ·i)`, one 64-bit word — paper §III-B1a/§III-B3); this struct keeps
/// the expanded threshold list, which is what the comparator tree sees.
#[derive(Clone, Debug, PartialEq)]
pub struct ThresholdUnit {
    /// Ascending integer thresholds (length `2ⁿ−1`, except `Constant`).
    thresholds: Vec<i64>,
    direction: Direction,
}

impl ThresholdUnit {
    /// Fuse BatchNorm parameters with a quantizer.
    ///
    /// Thresholds are computed in `f64` and snapped to the integer grid:
    /// for an increasing map, `a ≥ t ⟺ a ≥ ⌈t⌉` for integer `a`; for a
    /// decreasing map, `a ≤ t ⟺ a ≤ ⌊t⌋`.
    pub fn from_batchnorm(bn: &BnParams, spec: &QuantSpec) -> Self {
        let slope = f64::from(bn.gamma) * f64::from(bn.inv_sigma);
        if slope == 0.0 {
            // Degenerate: the normalized value is the constant B.
            return Self {
                thresholds: Vec::new(),
                direction: Direction::Constant(spec.quantize(bn.beta)),
            };
        }
        let mu = f64::from(bn.mu);
        let beta = f64::from(bn.beta);
        let mut thresholds: Vec<i64> = spec
            .endpoints()
            .map(|y| {
                let t = mu + (f64::from(y) - beta) / slope;
                let snapped = if slope > 0.0 { t.ceil() } else { t.floor() };
                snapped.clamp(i64::MIN as f64, i64::MAX as f64) as i64
            })
            .collect();
        let direction = if slope > 0.0 {
            Direction::Increasing
        } else {
            thresholds.reverse(); // preimages of ascending endpoints descend
            Direction::Decreasing
        };
        debug_assert!(thresholds.windows(2).all(|w| w[0] <= w[1]));
        Self { thresholds, direction }
    }

    /// A raw unit from explicit ascending thresholds (increasing direction);
    /// useful for tests and for identity-BN layers.
    pub fn from_raw_thresholds(thresholds: Vec<i64>) -> Self {
        assert!(thresholds.windows(2).all(|w| w[0] <= w[1]), "thresholds must ascend");
        Self { thresholds, direction: Direction::Increasing }
    }

    /// Apply to an integer accumulator via binary search (the paper's
    /// "binary search on the ranges").
    #[inline]
    pub fn activate(&self, a: i32) -> u8 {
        let a = i64::from(a);
        match self.direction {
            Direction::Constant(q) => q,
            Direction::Increasing => self.thresholds.partition_point(|&t| a >= t) as u8,
            Direction::Decreasing => {
                (self.thresholds.len() - self.thresholds.partition_point(|&t| t < a)) as u8
            }
        }
    }

    /// Reference implementation: linear scan over the comparator outputs.
    /// Exists to cross-check [`ThresholdUnit::activate`].
    pub fn activate_linear(&self, a: i32) -> u8 {
        let a = i64::from(a);
        match self.direction {
            Direction::Constant(q) => q,
            Direction::Increasing => self.thresholds.iter().filter(|&&t| a >= t).count() as u8,
            Direction::Decreasing => self.thresholds.iter().filter(|&&t| a <= t).count() as u8,
        }
    }

    /// Number of thresholds (`2ⁿ−1` for an n-bit non-degenerate unit).
    pub fn num_thresholds(&self) -> usize {
        self.thresholds.len()
    }

    /// Number of 32-bit words in the wire encoding of an n-bit unit:
    /// one direction/constant word plus `2ⁿ−1` thresholds.
    pub const fn wire_words(bits: u32) -> usize {
        1 + (1 << bits) - 1
    }

    /// Serialize for the CPU→DFE parameter stream (paper §III-B1a: the
    /// normalization parameters are sent as 32-bit words and cached
    /// on-chip). Layout: a direction word (0 = increasing, 1 = decreasing,
    /// 2 = constant-with-code-in-next-word) followed by the thresholds,
    /// padded to `wire_words(bits)` for a fixed per-neuron footprint.
    ///
    /// # Panics
    /// Panics when a threshold does not fit in 32 bits (cannot occur for
    /// units built from real accumulator ranges) or the unit's width
    /// exceeds `bits`.
    pub fn to_wire(&self, bits: u32) -> Vec<i32> {
        let words = Self::wire_words(bits);
        let mut out = Vec::with_capacity(words);
        match self.direction {
            Direction::Increasing => out.push(0),
            Direction::Decreasing => out.push(1),
            Direction::Constant(q) => {
                out.push(2);
                out.push(i32::from(q));
            }
        }
        for &t in &self.thresholds {
            out.push(i32::try_from(t).expect("threshold exceeds 32-bit wire word"));
        }
        assert!(out.len() <= words, "unit wider than the declared wire width");
        out.resize(words, 0);
        out
    }

    /// Deserialize a unit previously encoded with [`ThresholdUnit::to_wire`].
    ///
    /// # Panics
    /// Panics on a malformed direction word.
    pub fn from_wire(words: &[i32], bits: u32) -> Self {
        assert_eq!(words.len(), Self::wire_words(bits), "wire length mismatch");
        let n_thr = (1usize << bits) - 1;
        match words[0] {
            0 | 1 => {
                let thresholds: Vec<i64> =
                    words[1..=n_thr].iter().map(|&w| i64::from(w)).collect();
                debug_assert!(thresholds.windows(2).all(|p| p[0] <= p[1]));
                let direction =
                    if words[0] == 0 { Direction::Increasing } else { Direction::Decreasing };
                Self { thresholds, direction }
            }
            2 => Self { thresholds: Vec::new(), direction: Direction::Constant(words[1] as u8) },
            other => panic!("malformed threshold wire direction {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_partitions_range_evenly() {
        let spec = QuantSpec::paper_2bit(); // [0,4), d = 1
        assert_eq!(spec.d(), 1.0);
        assert_eq!(spec.quantize(-5.0), 0);
        assert_eq!(spec.quantize(0.0), 0);
        assert_eq!(spec.quantize(0.99), 0);
        assert_eq!(spec.quantize(1.0), 1);
        assert_eq!(spec.quantize(2.5), 2);
        assert_eq!(spec.quantize(3.0), 3);
        assert_eq!(spec.quantize(100.0), 3);
    }

    #[test]
    fn binary_spec_has_single_endpoint() {
        let spec = QuantSpec::binary();
        let eps: Vec<f32> = spec.endpoints().collect();
        assert_eq!(eps, vec![1.0]);
        assert_eq!(spec.quantize(0.5), 0);
        assert_eq!(spec.quantize(1.5), 1);
    }

    #[test]
    fn threshold_matches_bn_then_quantize_increasing() {
        let bn = BnParams::new(0.5, 10.0, 0.25, 1.0);
        let spec = QuantSpec::paper_2bit();
        let unit = ThresholdUnit::from_batchnorm(&bn, &spec);
        assert_eq!(unit.num_thresholds(), 3);
        for a in -200..=200 {
            let expected = spec.quantize(bn.apply(a as f32));
            assert_eq!(unit.activate(a), expected, "a={a}");
        }
    }

    #[test]
    fn threshold_matches_bn_then_quantize_decreasing() {
        let bn = BnParams::new(-0.7, 3.0, 0.4, 2.0);
        let spec = QuantSpec::paper_2bit();
        let unit = ThresholdUnit::from_batchnorm(&bn, &spec);
        for a in -200..=200 {
            let expected = spec.quantize(bn.apply(a as f32));
            assert_eq!(unit.activate(a), expected, "a={a}");
        }
    }

    #[test]
    fn constant_bn_yields_constant_code() {
        let bn = BnParams::new(0.0, 5.0, 1.0, 2.5);
        let spec = QuantSpec::paper_2bit();
        let unit = ThresholdUnit::from_batchnorm(&bn, &spec);
        for a in [-100, 0, 100] {
            assert_eq!(unit.activate(a), spec.quantize(2.5));
        }
    }

    #[test]
    fn binary_search_equals_linear_scan() {
        let unit = ThresholdUnit::from_raw_thresholds(vec![-10, -3, 0, 0, 7, 42, 100]);
        for a in -120..=120 {
            assert_eq!(unit.activate(a), unit.activate_linear(a), "a={a}");
        }
    }

    #[test]
    fn paper_identity_example() {
        // With identity BN and the paper's [0,4) spec, the code is a clamp
        // of the accumulator itself: thresholds at 1, 2, 3.
        let unit = ThresholdUnit::from_batchnorm(&BnParams::IDENTITY, &QuantSpec::paper_2bit());
        assert_eq!(unit.activate(-5), 0);
        assert_eq!(unit.activate(0), 0);
        assert_eq!(unit.activate(1), 1);
        assert_eq!(unit.activate(2), 2);
        assert_eq!(unit.activate(3), 3);
        assert_eq!(unit.activate(99), 3);
    }

    #[test]
    fn eight_bit_unit_has_255_thresholds() {
        let spec = QuantSpec::new(8, 0.0, 256.0);
        let unit = ThresholdUnit::from_batchnorm(&BnParams::IDENTITY, &spec);
        assert_eq!(unit.num_thresholds(), 255);
        assert_eq!(unit.activate(200), 200);
    }

    #[test]
    #[should_panic(expected = "activation bits")]
    fn zero_bits_rejected() {
        let _ = QuantSpec::new(0, 0.0, 1.0);
    }

    #[test]
    fn wire_roundtrip_preserves_behaviour() {
        let spec = QuantSpec::paper_2bit();
        for bn in [
            BnParams::new(0.5, 10.0, 0.25, 1.0),
            BnParams::new(-0.7, 3.0, 0.4, 2.0),
            BnParams::new(0.0, 5.0, 1.0, 2.5),
            BnParams::IDENTITY,
        ] {
            let unit = ThresholdUnit::from_batchnorm(&bn, &spec);
            let wire = unit.to_wire(2);
            assert_eq!(wire.len(), ThresholdUnit::wire_words(2));
            let back = ThresholdUnit::from_wire(&wire, 2);
            for a in -300..=300 {
                assert_eq!(unit.activate(a), back.activate(a), "a={a} bn={bn:?}");
            }
        }
    }

    #[test]
    fn wire_words_matches_paper_footprint_scale() {
        // 2-bit: 4 words/neuron. The paper packs the *derived* parameters
        // into 64 bits; the expanded wire form trades 2× link traffic for
        // zero on-chip threshold arithmetic.
        assert_eq!(ThresholdUnit::wire_words(1), 2);
        assert_eq!(ThresholdUnit::wire_words(2), 4);
        assert_eq!(ThresholdUnit::wire_words(8), 256);
    }

    #[test]
    #[should_panic(expected = "malformed")]
    fn bad_wire_direction_panics() {
        let _ = ThresholdUnit::from_wire(&[9, 0, 0, 0], 2);
    }
}
