//! Property tests for the quantization algebra.

use qnn_testkit::{any, prop_assert, prop_assert_eq, prop_assume, props, Strategy};
use qnn_quant::{
    dot_codes, dot_pm1, weighted_average, ActPlanes, BnParams, QuantSpec, SoftmaxLadder,
    ThresholdUnit, SOFTMAX_WEIGHT_BITS,
};
use qnn_tensor::BitVec;

fn finite_param() -> impl qnn_testkit::Strategy<Value = f32> {
    (-8.0f32..8.0).prop_filter("nonzero-ish", |x| x.abs() > 1e-3 || *x == 0.0)
}

props! {
    /// Fused threshold unit equals BatchNorm followed by uniform quantization
    /// for every integer accumulator, away from floating-point range-boundary
    /// ties (where the f32 reference itself is ill-defined).
    #[test]
    fn threshold_unit_equals_bn_then_quantize(
        gamma in finite_param(),
        mu in finite_param(),
        inv_sigma in finite_param(),
        beta in finite_param(),
        bits in 1u32..5,
        a in -500i32..500,
    ) {
        let bn = BnParams::new(gamma, mu, inv_sigma, beta);
        let spec = QuantSpec::new(bits, 0.0, (1u32 << bits) as f32);
        let unit = ThresholdUnit::from_batchnorm(&bn, &spec);
        let y = f64::from(gamma) * (f64::from(a) - f64::from(mu)) * f64::from(inv_sigma)
            + f64::from(beta);
        // Distance from the nearest range endpoint, in units of d (= 1 here).
        let frac = (y - y.floor()).min(y.ceil() - y);
        prop_assume!(frac > 1e-4);
        let expected = (y.floor().clamp(0.0, (spec.levels() - 1) as f64)).max(0.0) as u8;
        prop_assert_eq!(unit.activate(a), expected);
    }

    /// Binary search and linear comparator scan always agree.
    #[test]
    fn binary_search_equals_comparator_scan(
        mut ts in qnn_testkit::vec(-100i64..100, 0..16),
        a in -150i32..150,
    ) {
        ts.sort_unstable();
        let unit = ThresholdUnit::from_raw_thresholds(ts);
        prop_assert_eq!(unit.activate(a), unit.activate_linear(a));
    }

    /// Plane-decomposed dot product equals the code-level reference for any
    /// bit width.
    #[test]
    fn planes_dot_equals_codes_dot(
        bits in 1u32..6,
        seed in any::<u64>(),
        n in 1usize..200,
    ) {
        let mask = ((1u32 << bits) - 1) as u8;
        let codes: Vec<u8> = (0..n)
            .map(|i| ((seed.wrapping_mul(i as u64 * 2654435761 + 1) >> 24) as u8) & mask)
            .collect();
        let wbools: Vec<bool> = (0..n).map(|i| (seed >> (i % 64)) & 1 == 1).collect();
        let w = BitVec::from_bools(&wbools);
        let planes = ActPlanes::from_codes(bits, &codes);
        prop_assert_eq!(planes.dot(&w), dot_codes(&w, &codes));
    }

    /// XNOR dot is symmetric and bounded by ±n.
    #[test]
    fn pm1_dot_bounds(bools_a in qnn_testkit::vec(any::<bool>(), 1..128)) {
        let bools_b: Vec<bool> = bools_a.iter().map(|&b| !b).collect();
        let a = BitVec::from_bools(&bools_a);
        let b = BitVec::from_bools(&bools_b);
        let n = bools_a.len() as i32;
        prop_assert_eq!(dot_pm1(&a, &b), -n); // full disagreement
        prop_assert_eq!(dot_pm1(&a, &a), n);  // full agreement
    }

    /// Quantize is monotone non-decreasing in its argument.
    #[test]
    fn quantize_is_monotone(bits in 1u32..8, y1 in -100.0f32..100.0, dy in 0.0f32..50.0) {
        let spec = QuantSpec::new(bits, -16.0, 16.0);
        prop_assert!(spec.quantize(y1) <= spec.quantize(y1 + dy));
    }

    /// The threshold-softmax ladder is order-preserving: a higher score
    /// never gets a lower weight, and raising one score never lowers its
    /// own weight (the pairwise form of softmax monotonicity).
    #[test]
    fn softmax_ladder_is_monotone_in_scores(
        act_bits in 1u32..5,
        head_dim in 1usize..16,
        mut scores in qnn_testkit::vec(0i32..2000, 2..12),
        bump in 1i32..500,
        idx in any::<u64>(),
    ) {
        let ladder = SoftmaxLadder::for_scores(act_bits, head_dim);
        let w = ladder.weights_row(&scores);
        for (i, &si) in scores.iter().enumerate() {
            for (j, &sj) in scores.iter().enumerate() {
                if si >= sj {
                    prop_assert!(w[i] >= w[j], "score order {si}>={sj} broke weight order");
                }
            }
        }
        let i = (idx as usize) % scores.len();
        scores[i] += bump;
        let w2 = ladder.weights_row(&scores);
        prop_assert!(w2[i] >= w[i], "raising a score lowered its weight");
    }

    /// Row-sum bounds: every weight lies in `0 ..= 2^b − 1`, the row
    /// maximum always carries full weight, and the row sum is therefore
    /// pinned inside `[2^b − 1, n·(2^b − 1)]` — the denominator of the
    /// weighted average can never vanish or overflow its design bound.
    #[test]
    fn softmax_ladder_row_sum_bounds(
        act_bits in 1u32..5,
        head_dim in 1usize..16,
        scores in qnn_testkit::vec(0i32..4000, 1..12),
    ) {
        let ladder = SoftmaxLadder::for_scores(act_bits, head_dim);
        let w = ladder.weights_row(&scores);
        let w_max = (1i32 << SOFTMAX_WEIGHT_BITS) - 1;
        for &wi in &w {
            prop_assert!((0..=w_max).contains(&wi));
        }
        let arg = (0..scores.len()).max_by_key(|&i| scores[i]).expect("non-empty");
        prop_assert_eq!(w[arg], w_max, "row max must carry full weight");
        let sum: i32 = w.iter().sum();
        prop_assert!(sum >= w_max && sum <= w_max * scores.len() as i32);
    }

    /// Argmax preservation against the real thing: the position an exact
    /// f64 softmax ranks highest always carries the ladder's top weight,
    /// so replacing exp-normalization with the threshold ladder can never
    /// flip which token dominates an attention row.
    #[test]
    fn softmax_ladder_preserves_float_softmax_argmax(
        act_bits in 1u32..5,
        head_dim in 1usize..16,
        scores in qnn_testkit::vec(0i32..2000, 1..12),
    ) {
        let m = *scores.iter().max().expect("non-empty");
        let exps: Vec<f64> = scores.iter().map(|&s| f64::from(s - m).exp()).collect();
        let total: f64 = exps.iter().sum();
        let float_arg = (0..exps.len())
            .max_by(|&a, &b| exps[a].total_cmp(&exps[b]))
            .expect("non-empty");
        prop_assert!(exps[float_arg] / total > 0.0);
        let ladder = SoftmaxLadder::for_scores(act_bits, head_dim);
        let w = ladder.weights_row(&scores);
        let top = *w.iter().max().expect("non-empty");
        prop_assert_eq!(w[float_arg], top, "float-softmax argmax lost the top ladder weight");
    }

    /// The attention AV reduction is a true average: its output code is
    /// bracketed by the smallest and largest value codes of the row, so
    /// attention outputs never escape the activation code range and need
    /// no re-quantization.
    #[test]
    fn weighted_average_is_bracketed_by_operands(
        act_bits in 1u32..5,
        head_dim in 1usize..16,
        scores in qnn_testkit::vec(0i32..2000, 1..12),
        seed in any::<u64>(),
    ) {
        let mask = ((1u16 << act_bits) - 1) as u8;
        let values: Vec<u8> = (0..scores.len())
            .map(|u| ((seed.wrapping_mul(u as u64 * 2654435761 + 17) >> 13) as u8) & mask)
            .collect();
        let ladder = SoftmaxLadder::for_scores(act_bits, head_dim);
        let w = ladder.weights_row(&scores);
        let avg = weighted_average(&w, |u| values[u]);
        let lo = *values.iter().min().expect("non-empty");
        let hi = *values.iter().max().expect("non-empty");
        prop_assert!(avg >= lo && avg <= hi, "average {avg} escaped [{lo}, {hi}]");
    }
}
