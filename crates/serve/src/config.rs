//! Serving-runtime configuration.

use qnn_compiler::CompileOptions;
use std::time::Duration;

/// What `submit` does when the bounded submission queue is full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Block the submitting thread until the queue drains (backpressure
    /// propagates to the traffic source, like a PCIe link asserting halt).
    Block,
    /// Fail fast with [`crate::SubmitError::QueueFull`], returning the
    /// image to the caller (load shedding at the admission edge).
    Reject,
}

/// Configuration of a [`crate::serve`] runtime instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Number of independent pipeline replicas (worker threads). Each
    /// replica runs the lockstep device executor on its own thread;
    /// batches are dispatched round-robin across replicas.
    pub replicas: usize,
    /// Maximum images per batch. A full batch dispatches immediately.
    pub max_batch: usize,
    /// Maximum wall time a partial batch may wait for more requests,
    /// measured from its first queued request. Mirrors the paper's PCIe
    /// burst assembly: the host trades a little latency for occupancy.
    pub flush_deadline: Duration,
    /// Depth of the bounded submission queue (requests, not batches).
    pub queue_depth: usize,
    /// Behaviour when the submission queue is full.
    pub admission: AdmissionPolicy,
    /// Compile options shared by every replica (placement, FIFO sizing,
    /// parameter streaming).
    pub compile: CompileOptions,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            replicas: 1,
            max_batch: 8,
            flush_deadline: Duration::from_millis(2),
            queue_depth: 64,
            admission: AdmissionPolicy::Block,
            compile: CompileOptions::default(),
        }
    }
}

impl ServerConfig {
    /// Panic on nonsensical settings (zero replicas/batch/queue).
    pub(crate) fn validate(&self) {
        assert!(self.replicas > 0, "serving needs at least one replica");
        assert!(self.max_batch > 0, "batches must hold at least one image");
        assert!(self.queue_depth > 0, "the submission queue cannot be zero-depth");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        ServerConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_rejected() {
        ServerConfig { replicas: 0, ..ServerConfig::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "at least one image")]
    fn zero_batch_rejected() {
        ServerConfig { max_batch: 0, ..ServerConfig::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "zero-depth")]
    fn zero_queue_rejected() {
        ServerConfig { queue_depth: 0, ..ServerConfig::default() }.validate();
    }
}
