//! Serving-runtime configuration: admission, batching, dispatch, and the
//! scheduling classes of the two-level scheduler.

use qnn_compiler::CompileOptions;
use std::fmt;
use std::time::Duration;

/// What `submit` does when the bounded submission queue is full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Block the submitting thread until the queue drains (backpressure
    /// propagates to the traffic source, like a PCIe link asserting halt).
    Block,
    /// Fail fast with [`crate::SubmitError::QueueFull`], returning the
    /// image to the caller (load shedding at the admission edge).
    Reject,
}

/// How the batcher picks the replica for a flushed batch (level 2 of the
/// scheduler, within the target model's pool).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DispatchPolicy {
    /// Shortest-queue-first: the pool replica with the fewest in-flight
    /// images (queued + running, ties to the lowest id). A slow or busy
    /// replica stops attracting work until it drains — the sensible
    /// default for heterogeneous load.
    #[default]
    LeastLoaded,
    /// Cycle through the pool's replicas in id order regardless of load.
    /// Shard sizes depend only on the flush sequence, which makes
    /// per-replica cycle counts reproducible — used by the scaling bench.
    RoundRobin,
}

/// Scheduling class of a request — level 1 of the two-level scheduler.
///
/// Classes keep separate batcher lanes per model: an `Interactive` lane
/// flushes at its own (shorter) deadline and is dispatched ahead of
/// `Batch` work at every scheduling decision, so trickle-latency traffic
/// is not held hostage by throughput traffic still filling its batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Priority {
    /// Latency-sensitive traffic: partial batches flush after
    /// [`ServerConfig::interactive_flush_deadline`], and expired lanes of
    /// this class always flush before `Batch` lanes.
    Interactive,
    /// Throughput traffic: fills batches to `max_batch` under the longer
    /// [`ServerConfig::flush_deadline`]. The default — single-class
    /// traffic through [`crate::serve`] behaves exactly like the
    /// pre-registry server.
    #[default]
    Batch,
}

impl Priority {
    /// Both classes, scheduling order first.
    pub const ALL: [Priority; 2] = [Priority::Interactive, Priority::Batch];

    /// Dense index for per-class tables.
    pub(crate) fn index(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Batch => 1,
        }
    }

    /// Human-readable class name.
    pub fn name(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a [`ServerConfig`] (or a server built from one) was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// `replicas == 0` — serving needs at least one replica per pool.
    ZeroReplicas,
    /// `max_batch == 0` — batches must hold at least one image.
    ZeroBatch,
    /// `queue_depth == 0` — the submission queue cannot be zero-depth.
    ZeroQueueDepth,
    /// `synthetic_replica_delay` is non-empty but does not name every
    /// replica of the default pool.
    SyntheticDelayLength {
        /// The configured default pool size (`replicas`).
        expected: usize,
        /// The delay vector's actual length.
        got: usize,
    },
    /// `Server::start` was called with no registered models.
    NoModels,
    /// Two models were registered under the same name.
    DuplicateModel(String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroReplicas => write!(f, "serving needs at least one replica"),
            ConfigError::ZeroBatch => write!(f, "batches must hold at least one image"),
            ConfigError::ZeroQueueDepth => {
                write!(f, "the submission queue cannot be zero-depth")
            }
            ConfigError::SyntheticDelayLength { expected, got } => write!(
                f,
                "synthetic_replica_delay must be empty or name every replica \
                 (expected {expected}, got {got})"
            ),
            ConfigError::NoModels => write!(f, "a server needs at least one model"),
            ConfigError::DuplicateModel(name) => {
                write!(f, "model {name:?} registered twice")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Configuration of a serving runtime instance ([`crate::Server`] or the
/// [`crate::serve`] shim).
///
/// Fields stay public for struct-literal construction in tests and
/// benches; [`ServerConfig::builder`] is the validating path — it returns
/// [`ConfigError`] instead of letting a nonsensical config reach the
/// runtime.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Default pool size: independent pipeline replicas (worker threads)
    /// per registered model that does not override it. Each replica runs
    /// the lockstep device executor on its own thread; batches are
    /// dispatched within a model's pool per [`DispatchPolicy`].
    pub replicas: usize,
    /// Maximum images per batch. A full batch dispatches immediately.
    pub max_batch: usize,
    /// Maximum wall time a partial [`Priority::Batch`] batch may wait for
    /// more requests, measured from its lane's first queued request.
    /// Mirrors the paper's PCIe burst assembly: the host trades a little
    /// latency for occupancy.
    pub flush_deadline: Duration,
    /// Maximum wall time a partial [`Priority::Interactive`] batch may
    /// wait — the latency-class analogue of `flush_deadline`, normally
    /// much shorter.
    pub interactive_flush_deadline: Duration,
    /// Depth of the bounded submission queue (requests, not batches).
    pub queue_depth: usize,
    /// Behaviour when the submission queue is full.
    pub admission: AdmissionPolicy,
    /// Replica-selection policy for flushed batches.
    pub dispatch: DispatchPolicy,
    /// Test/bench knob: extra busy time injected per batch on replica
    /// `i` of each pool, modeling a slower card or a co-tenant. Empty
    /// (the default) injects nothing; otherwise the length must equal
    /// `replicas` (pools sized differently fall back to zero delay past
    /// the end).
    pub synthetic_replica_delay: Vec<Duration>,
    /// Compile options shared by every replica of models that do not
    /// override them (placement, FIFO sizing, parameter streaming).
    pub compile: CompileOptions,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            replicas: 1,
            max_batch: 8,
            flush_deadline: Duration::from_millis(2),
            interactive_flush_deadline: Duration::from_micros(500),
            queue_depth: 64,
            admission: AdmissionPolicy::Block,
            dispatch: DispatchPolicy::default(),
            synthetic_replica_delay: Vec::new(),
            compile: CompileOptions::default(),
        }
    }
}

impl ServerConfig {
    /// A validating builder starting from [`ServerConfig::default`].
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder { config: ServerConfig::default() }
    }

    /// Check the invariants the runtime relies on.
    pub(crate) fn validate(&self) -> Result<(), ConfigError> {
        if self.replicas == 0 {
            return Err(ConfigError::ZeroReplicas);
        }
        if self.max_batch == 0 {
            return Err(ConfigError::ZeroBatch);
        }
        if self.queue_depth == 0 {
            return Err(ConfigError::ZeroQueueDepth);
        }
        if !self.synthetic_replica_delay.is_empty()
            && self.synthetic_replica_delay.len() != self.replicas
        {
            return Err(ConfigError::SyntheticDelayLength {
                expected: self.replicas,
                got: self.synthetic_replica_delay.len(),
            });
        }
        Ok(())
    }
}

/// Builder for [`ServerConfig`]; [`ServerConfigBuilder::build`] validates
/// and returns [`ConfigError`] for nonsensical settings instead of
/// panicking inside the runtime.
#[derive(Clone, Debug)]
pub struct ServerConfigBuilder {
    config: ServerConfig,
}

impl ServerConfigBuilder {
    /// Default pool size (replica worker threads per model).
    pub fn replicas(mut self, replicas: usize) -> Self {
        self.config.replicas = replicas;
        self
    }

    /// Maximum images per batch.
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.config.max_batch = max_batch;
        self
    }

    /// Flush deadline for partial [`Priority::Batch`] batches.
    pub fn flush_deadline(mut self, deadline: Duration) -> Self {
        self.config.flush_deadline = deadline;
        self
    }

    /// Flush deadline for partial [`Priority::Interactive`] batches.
    pub fn interactive_flush_deadline(mut self, deadline: Duration) -> Self {
        self.config.interactive_flush_deadline = deadline;
        self
    }

    /// Submission queue depth.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.config.queue_depth = depth;
        self
    }

    /// Behaviour when the submission queue is full.
    pub fn admission(mut self, policy: AdmissionPolicy) -> Self {
        self.config.admission = policy;
        self
    }

    /// Replica-selection policy.
    pub fn dispatch(mut self, policy: DispatchPolicy) -> Self {
        self.config.dispatch = policy;
        self
    }

    /// Per-replica synthetic busy time (test/bench knob).
    pub fn synthetic_replica_delay(mut self, delays: Vec<Duration>) -> Self {
        self.config.synthetic_replica_delay = delays;
        self
    }

    /// Default compile options for registered models.
    pub fn compile(mut self, compile: CompileOptions) -> Self {
        self.config.compile = compile;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<ServerConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(ServerConfig::default().validate().is_ok());
        let built = ServerConfig::builder().build().expect("default builds");
        assert_eq!(built.replicas, 1);
    }

    #[test]
    fn builder_round_trips_every_knob() {
        let config = ServerConfig::builder()
            .replicas(3)
            .max_batch(4)
            .flush_deadline(Duration::from_millis(7))
            .interactive_flush_deadline(Duration::from_millis(1))
            .queue_depth(16)
            .admission(AdmissionPolicy::Reject)
            .dispatch(DispatchPolicy::RoundRobin)
            .synthetic_replica_delay(vec![Duration::ZERO; 3])
            .build()
            .expect("valid");
        assert_eq!(config.replicas, 3);
        assert_eq!(config.max_batch, 4);
        assert_eq!(config.flush_deadline, Duration::from_millis(7));
        assert_eq!(config.interactive_flush_deadline, Duration::from_millis(1));
        assert_eq!(config.queue_depth, 16);
        assert_eq!(config.admission, AdmissionPolicy::Reject);
        assert_eq!(config.dispatch, DispatchPolicy::RoundRobin);
        assert_eq!(config.synthetic_replica_delay.len(), 3);
    }

    #[test]
    fn zero_replicas_rejected_with_typed_error() {
        assert_eq!(
            ServerConfig::builder().replicas(0).build().err(),
            Some(ConfigError::ZeroReplicas)
        );
    }

    #[test]
    fn zero_batch_rejected_with_typed_error() {
        assert_eq!(
            ServerConfig::builder().max_batch(0).build().err(),
            Some(ConfigError::ZeroBatch)
        );
    }

    #[test]
    fn zero_queue_rejected_with_typed_error() {
        assert_eq!(
            ServerConfig::builder().queue_depth(0).build().err(),
            Some(ConfigError::ZeroQueueDepth)
        );
    }

    #[test]
    fn synthetic_delay_length_mismatch_is_typed() {
        let err = ServerConfig::builder()
            .replicas(2)
            .synthetic_replica_delay(vec![Duration::ZERO])
            .build()
            .err();
        assert_eq!(err, Some(ConfigError::SyntheticDelayLength { expected: 2, got: 1 }));
        // The error is also a readable message for the panic path of the
        // legacy `serve` shim.
        assert!(err.unwrap().to_string().contains("every replica"));
    }

    #[test]
    fn priority_order_and_names() {
        assert_eq!(Priority::ALL[0], Priority::Interactive);
        assert_eq!(Priority::default(), Priority::Batch);
        assert_eq!(Priority::Interactive.name(), "interactive");
        assert_eq!(Priority::Batch.to_string(), "batch");
    }
}
