//! Serving-runtime configuration.

use qnn_compiler::CompileOptions;
use std::time::Duration;

/// What `submit` does when the bounded submission queue is full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Block the submitting thread until the queue drains (backpressure
    /// propagates to the traffic source, like a PCIe link asserting halt).
    Block,
    /// Fail fast with [`crate::SubmitError::QueueFull`], returning the
    /// image to the caller (load shedding at the admission edge).
    Reject,
}

/// How the batcher picks the replica for a flushed batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DispatchPolicy {
    /// Shortest-queue-first: the replica with the fewest in-flight images
    /// (queued + running, ties to the lowest id). A slow or busy replica
    /// stops attracting work until it drains — the sensible default for
    /// heterogeneous load.
    #[default]
    LeastLoaded,
    /// Cycle through replicas in id order regardless of load. Shard
    /// sizes depend only on the flush sequence, which makes per-replica
    /// cycle counts reproducible — used by the scaling bench.
    RoundRobin,
}

/// Configuration of a [`crate::serve`] runtime instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Number of independent pipeline replicas (worker threads). Each
    /// replica runs the lockstep device executor on its own thread;
    /// batches are dispatched across replicas per [`DispatchPolicy`].
    pub replicas: usize,
    /// Maximum images per batch. A full batch dispatches immediately.
    pub max_batch: usize,
    /// Maximum wall time a partial batch may wait for more requests,
    /// measured from its first queued request. Mirrors the paper's PCIe
    /// burst assembly: the host trades a little latency for occupancy.
    pub flush_deadline: Duration,
    /// Depth of the bounded submission queue (requests, not batches).
    pub queue_depth: usize,
    /// Behaviour when the submission queue is full.
    pub admission: AdmissionPolicy,
    /// Replica-selection policy for flushed batches.
    pub dispatch: DispatchPolicy,
    /// Test/bench knob: extra busy time injected per batch on replica
    /// `i`, modeling a slower card or a co-tenant. Empty (the default)
    /// injects nothing; otherwise the length must equal `replicas`.
    pub synthetic_replica_delay: Vec<Duration>,
    /// Compile options shared by every replica (placement, FIFO sizing,
    /// parameter streaming).
    pub compile: CompileOptions,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            replicas: 1,
            max_batch: 8,
            flush_deadline: Duration::from_millis(2),
            queue_depth: 64,
            admission: AdmissionPolicy::Block,
            dispatch: DispatchPolicy::default(),
            synthetic_replica_delay: Vec::new(),
            compile: CompileOptions::default(),
        }
    }
}

impl ServerConfig {
    /// Panic on nonsensical settings (zero replicas/batch/queue).
    pub(crate) fn validate(&self) {
        assert!(self.replicas > 0, "serving needs at least one replica");
        assert!(self.max_batch > 0, "batches must hold at least one image");
        assert!(self.queue_depth > 0, "the submission queue cannot be zero-depth");
        assert!(
            self.synthetic_replica_delay.is_empty()
                || self.synthetic_replica_delay.len() == self.replicas,
            "synthetic_replica_delay must be empty or name every replica"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        ServerConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_rejected() {
        ServerConfig { replicas: 0, ..ServerConfig::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "at least one image")]
    fn zero_batch_rejected() {
        ServerConfig { max_batch: 0, ..ServerConfig::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "zero-depth")]
    fn zero_queue_rejected() {
        ServerConfig { queue_depth: 0, ..ServerConfig::default() }.validate();
    }
}
