//! `qnn-serve` — a batch-parallel inference serving runtime for the
//! streaming-QNN pipeline.
//!
//! The paper's architecture hides layer latency by overlapping images
//! *inside one pipeline*; the host side of a production deployment must
//! additionally keep **several** pipelines fed at line rate (FINN-R's
//! batching runtime makes the same point for their accelerator). This
//! crate is that host runtime:
//!
//! * a **bounded submission queue** with configurable admission (block
//!   for backpressure, or reject-when-full for load shedding);
//! * a **batcher** that assembles requests into batches, dispatching on
//!   whichever comes first — the batch filling to `max_batch` (the PCIe
//!   image burst of §III-B6) or a flush deadline expiring (latency bound
//!   for trickle traffic);
//! * **N replica workers**, each owning an independent clone of the
//!   compiled pipeline ([`qnn_compiler::compile_replicas`]) and running
//!   the existing lockstep device executor on its own thread; batches go
//!   to the replica with the fewest in-flight images (least-loaded
//!   dispatch, with round-robin as a [`DispatchPolicy`] option), so
//!   throughput scales with cores while every image's logits stay
//!   bit-identical to direct execution;
//! * **per-request and aggregate statistics** — queue wait, batch
//!   occupancy, p50/p95 latency, images/sec — via `qnn-testkit`'s bench
//!   helpers;
//! * **graceful drop-driven shutdown** that drains every in-flight batch
//!   before returning.
//!
//! Everything is `std`-only (`std::sync::mpsc` + `std::thread::scope`),
//! per the workspace's hermetic-build policy.
//!
//! ## Example
//!
//! ```
//! use qnn_nn::{models, Network};
//! use qnn_serve::{serve, ServerConfig};
//! use qnn_tensor::{Shape3, Tensor3};
//!
//! let net = Network::random(models::test_net(8, 4, 2), 42);
//! let config = ServerConfig { replicas: 2, max_batch: 4, ..ServerConfig::default() };
//! let (responses, report) = serve(&net, &config, |client| {
//!     let tickets: Vec<_> = (0..4)
//!         .map(|s| {
//!             let img = Tensor3::from_fn(Shape3::square(8, 3), |y, x, c| {
//!                 ((s + y * 31 + x * 7 + c) % 255) as i8
//!             });
//!             client.submit(img).expect("admitted")
//!         })
//!         .collect();
//!     tickets.into_iter().map(|t| t.wait().expect("answered")).collect::<Vec<_>>()
//! });
//! assert_eq!(responses.len(), 4);
//! assert_eq!(report.completed, 4);
//! ```

mod config;
mod server;
mod stats;

pub use config::{AdmissionPolicy, DispatchPolicy, ServerConfig};
pub use server::{serve, Client, Response, SubmitError, Ticket};
pub use stats::{LatencySummary, ReplicaStats, RequestStats, ServerReport};
