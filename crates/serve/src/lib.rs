//! `qnn-serve` — a multi-model, priority-aware inference serving runtime
//! for the streaming-QNN pipeline.
//!
//! The paper's architecture hides layer latency by overlapping images
//! *inside one pipeline*; the host side of a production deployment must
//! additionally keep **several** pipelines fed at line rate (FINN-R's
//! batching runtime makes the same point for their accelerator). This
//! crate is that host runtime:
//!
//! * a **model registry** ([`ModelRegistry`]) mapping names to compiled
//!   artifacts, each backed by its own **replica pool**; one server hosts
//!   many networks side by side;
//! * **hot weight swapping** ([`Server::publish_weights`]): batches
//!   already dispatched finish on the old parameters, later batches run
//!   bit-identically on the new ones, and no batch ever mixes versions —
//!   the host-side analogue of the paper's PCIe parameter streaming;
//! * a **two-level scheduler**: level 1 orders scheduling classes
//!   ([`Priority::Interactive`] before [`Priority::Batch`], each class
//!   with its own flush deadline) and sheds requests whose per-request
//!   deadline has already passed; level 2 picks the replica inside the
//!   target model's pool (least-loaded, or round-robin via
//!   [`DispatchPolicy`]);
//! * a **bounded submission queue** with configurable admission (block
//!   for backpressure, or reject-when-full for load shedding);
//! * a **batcher** that assembles per-(model, class) batches, dispatching
//!   on whichever comes first — the batch filling to `max_batch` (the
//!   PCIe image burst of §III-B6) or the class's flush deadline expiring;
//! * **per-request, per-class, per-model, and per-replica statistics** —
//!   queue wait, batch occupancy, p50/p95 latency, shed counts,
//!   images/sec — via `qnn-testkit`'s bench helpers;
//! * **handle-based lifecycle**: [`Server::builder`] →
//!   [`ServerBuilder::model`] → [`ServerBuilder::start`], submit through
//!   [`Server::client`] handles, and [`Server::shutdown`] drains every
//!   in-flight batch before returning the [`ServerReport`].
//!
//! Everything is `std`-only (`std::sync::mpsc` + `std::thread`), per the
//! workspace's hermetic-build policy.
//!
//! ## Example: multi-model server with priorities
//!
//! ```
//! use qnn_nn::{models, Network};
//! use qnn_serve::{Priority, Server, ServerConfig, SubmitOptions};
//! use qnn_tensor::{Shape3, Tensor3};
//!
//! let mnist = Network::random(models::test_net(8, 4, 2), 42);
//! let cifar = Network::random(models::test_net(8, 6, 3), 43);
//! let config = ServerConfig::builder()
//!     .replicas(2)
//!     .max_batch(4)
//!     .build()
//!     .expect("valid config");
//! let server = Server::builder()
//!     .config(config)
//!     .model("mnist", &mnist)
//!     .model("cifar", &cifar)
//!     .start()
//!     .expect("valid server");
//! let client = server.client();
//! let img = Tensor3::from_fn(Shape3::square(8, 3), |y, x, c| ((y * 31 + x * 7 + c) % 255) as i8);
//! let opts = SubmitOptions::model("mnist").priority(Priority::Interactive);
//! let ticket = client.submit_with(img, opts).expect("admitted");
//! let response = ticket.wait().expect("answered");
//! assert_eq!(response.model, "mnist");
//! let report = server.shutdown();
//! assert_eq!(report.completed, 1);
//! ```
//!
//! ## Example: single-model shim (the legacy closure API, deprecated)
//!
//! ```
//! # #![allow(deprecated)]
//! use qnn_nn::{models, Network};
//! use qnn_serve::{serve, ServerConfig};
//! use qnn_tensor::{Shape3, Tensor3};
//!
//! let net = Network::random(models::test_net(8, 4, 2), 42);
//! let config = ServerConfig { replicas: 2, max_batch: 4, ..ServerConfig::default() };
//! let (responses, report) = serve(&net, &config, |client| {
//!     let tickets: Vec<_> = (0..4)
//!         .map(|s| {
//!             let img = Tensor3::from_fn(Shape3::square(8, 3), |y, x, c| {
//!                 ((s + y * 31 + x * 7 + c) % 255) as i8
//!             });
//!             client.submit(img).expect("admitted")
//!         })
//!         .collect();
//!     tickets.into_iter().map(|t| t.wait().expect("answered")).collect::<Vec<_>>()
//! });
//! assert_eq!(responses.len(), 4);
//! assert_eq!(report.completed, 4);
//! ```

mod config;
mod registry;
mod server;
mod stats;

pub use config::{
    AdmissionPolicy, ConfigError, DispatchPolicy, Priority, ServerConfig, ServerConfigBuilder,
};
pub use registry::{ModelRegistry, PublishError};
pub use server::{
    Client, Dropped, ModelOptions, ResizeError, Response, Server, ServerBuilder, SubmitError,
    SubmitOptions, Ticket, DEFAULT_MODEL,
};
// Re-exported separately so the deprecation travels with the item without
// tripping `deprecated` on the facade's own `use`.
#[allow(deprecated)]
pub use server::serve;
pub use stats::{
    ClassStats, LatencySummary, LoadWindow, ModelStats, ReplicaStats, RequestStats, ServerReport,
};
