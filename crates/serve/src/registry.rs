//! The model registry: names → compiled artifacts, with hot weight swaps.
//!
//! Each registered model owns one slot holding the *current*
//! [`ModelArtifact`] behind a mutex. The batcher samples the slot once per
//! flushed batch, so a [`ModelRegistry::publish`] behaves exactly like the
//! paper's PCIe parameter streaming: batches dispatched before the publish
//! finish on the old snapshot, batches flushed after it run on the new one,
//! and no batch ever sees a mix — the snapshot is pinned by `Arc` for the
//! batch's whole lifetime.

use qnn_compiler::ModelArtifact;
use qnn_nn::Network;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Cap on buffered interactive-latency samples per model: the autoscaler
/// drains the buffer every control tick, so the cap only bites when no
/// one is sampling — old samples are dropped, newest kept.
const LIVE_SAMPLE_CAP: usize = 1024;

/// Live per-model load counters, updated on the request path and read by
/// the autoscaler / cluster router between shutdown reports. All plain
/// atomics except the latency sample buffer, which is a drained-on-read
/// mutex-guarded vector (one short lock per completed interactive
/// request).
pub(crate) struct LiveCounters {
    /// Requests admitted for this model (cumulative).
    pub submitted: AtomicU64,
    /// Requests answered with a response (cumulative).
    pub completed: AtomicU64,
    /// Requests shed at dispatch (cumulative).
    pub shed: AtomicU64,
    /// Current backlog: admitted but not yet answered or shed.
    pub in_flight: AtomicU64,
    /// Interactive end-to-end latencies since the last window read.
    interactive: Mutex<Vec<Duration>>,
}

impl LiveCounters {
    fn new() -> Self {
        Self {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            interactive: Mutex::new(Vec::new()),
        }
    }

    /// Record one interactive completion latency.
    pub fn push_interactive(&self, latency: Duration) {
        let mut buf = self.interactive.lock().expect("live sample buffer poisoned");
        if buf.len() >= LIVE_SAMPLE_CAP {
            buf.remove(0);
        }
        buf.push(latency);
    }

    /// Drain the buffered interactive latencies (the window read).
    pub fn take_interactive(&self) -> Vec<Duration> {
        std::mem::take(&mut *self.interactive.lock().expect("live sample buffer poisoned"))
    }
}

/// Why a weight publish was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PublishError {
    /// No model of that name is registered.
    UnknownModel(String),
    /// The new parameters belong to a different architecture than the
    /// registered spec — weight swapping replaces parameters, never the
    /// network shape.
    SpecMismatch(String),
}

impl fmt::Display for PublishError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PublishError::UnknownModel(name) => {
                write!(f, "no model named {name:?} is registered")
            }
            PublishError::SpecMismatch(name) => write!(
                f,
                "published weights for {name:?} belong to a different architecture"
            ),
        }
    }
}

impl std::error::Error for PublishError {}

/// One registered model: its name, pool geometry, and the mutable slot the
/// hot-swap protocol revolves around.
pub(crate) struct ModelEntry {
    pub name: Arc<str>,
    /// Current weight snapshot; swapped wholesale by `publish`.
    current: Mutex<Arc<ModelArtifact>>,
    /// Number of replica workers currently in this model's pool
    /// (atomic: pools resize at runtime via `Server::resize_pool`).
    replicas: AtomicUsize,
    /// How many weight versions were published after registration.
    publishes: AtomicU64,
    /// Live load counters for this model.
    pub live: LiveCounters,
}

/// Maps model names to compiled artifacts and carries the swap protocol.
///
/// Shared (read-mostly) between the [`crate::Server`] handle, its
/// [`crate::Client`]s (name resolution at submit time), and the batcher
/// (artifact sampling at dispatch time).
pub struct ModelRegistry {
    models: Vec<ModelEntry>,
}

impl ModelRegistry {
    pub(crate) fn new(models: Vec<ModelEntry>) -> Self {
        Self { models }
    }

    pub(crate) fn entry(&self, idx: usize) -> &ModelEntry {
        &self.models[idx]
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// True when no models are registered (never the case for a started
    /// server).
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Registered model names, in registration order.
    pub fn names(&self) -> Vec<String> {
        self.models.iter().map(|m| m.name.to_string()).collect()
    }

    /// Index of `name`, if registered.
    pub(crate) fn resolve(&self, name: &str) -> Option<usize> {
        self.models.iter().position(|m| &*m.name == name)
    }

    /// The model's current weight snapshot (sampled once per batch by the
    /// batcher — the atomicity unit of the swap protocol).
    pub(crate) fn current(&self, idx: usize) -> Arc<ModelArtifact> {
        Arc::clone(&self.models[idx].current.lock().expect("registry slot poisoned"))
    }

    /// The current weight version of `name` (0 until the first publish).
    pub fn version(&self, name: &str) -> Option<u64> {
        self.resolve(name).map(|i| self.current(i).version())
    }

    /// How many weight publishes `idx` has seen.
    pub(crate) fn publishes(&self, idx: usize) -> u64 {
        self.models[idx].publishes.load(Ordering::Relaxed)
    }

    /// The live load counters of model `idx`.
    pub(crate) fn live(&self, idx: usize) -> &LiveCounters {
        &self.models[idx].live
    }

    /// Current pool size of model `idx`.
    pub(crate) fn replicas(&self, idx: usize) -> usize {
        self.models[idx].replicas.load(Ordering::Relaxed)
    }

    /// Record a pool resize (called by the batcher after reshaping).
    pub(crate) fn set_replicas(&self, idx: usize, replicas: usize) {
        self.models[idx].replicas.store(replicas, Ordering::Relaxed);
    }

    /// Publish new parameters for `name`: subsequent batches run on the
    /// new weights, in-flight batches finish on the old ones. Returns the
    /// new weight version.
    pub fn publish(&self, name: &str, net: Network) -> Result<u64, PublishError> {
        let idx = self
            .resolve(name)
            .ok_or_else(|| PublishError::UnknownModel(name.to_string()))?;
        let entry = &self.models[idx];
        let mut slot = entry.current.lock().expect("registry slot poisoned");
        let next = slot
            .with_weights(net)
            .map_err(|_| PublishError::SpecMismatch(name.to_string()))?;
        let version = next.version();
        *slot = Arc::new(next);
        entry.publishes.fetch_add(1, Ordering::Relaxed);
        Ok(version)
    }
}

pub(crate) fn entry(name: String, artifact: Arc<ModelArtifact>, replicas: usize) -> ModelEntry {
    ModelEntry {
        name: Arc::from(name),
        current: Mutex::new(artifact),
        replicas: AtomicUsize::new(replicas),
        publishes: AtomicU64::new(0),
        live: LiveCounters::new(),
    }
}
