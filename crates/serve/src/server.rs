//! The serving runtime: submission queue → batcher → replica workers.
//!
//! Thread topology (all `std::sync::mpsc` + `std::thread::scope`, per the
//! hermetic-build policy):
//!
//! ```text
//!  client threads ──submit──▶ [bounded submission queue]
//!                                     │
//!                                 batcher thread
//!                        (size- and deadline-triggered flush,
//!                     least-loaded or round-robin dispatch)
//!                        │           │           │
//!                   [batch q]   [batch q]   [batch q]      (depth 1 each)
//!                        │           │           │
//!                    replica 0   replica 1   replica 2     (worker threads,
//!                        │           │           │     lockstep executor each)
//!                        └──per-request reply channels──▶ tickets
//! ```
//!
//! Under [`DispatchPolicy::LeastLoaded`] (the default) the batcher tracks
//! per-replica in-flight image counts: incremented at dispatch, decremented
//! by the worker once the batch is answered. A flush goes to the replica
//! with the fewest in-flight images (ties to the lowest id), so a slow
//! replica stops attracting batches while drained replicas keep pulling
//! work; [`DispatchPolicy::RoundRobin`] keeps the old id-order rotation.
//!
//! Shutdown is drop-driven and drains: when the `body` closure returns,
//! the [`Client`] (sole submission sender) is dropped, the batcher sees
//! the queue disconnect, flushes its partial batch, and drops the batch
//! senders; each worker drains its remaining batches and returns its
//! counters. Every admitted request is answered before [`serve`] returns.

use crate::config::{AdmissionPolicy, DispatchPolicy, ServerConfig};
use crate::stats::{LatencySummary, ReplicaStats, RequestStats, ServerReport};
use qnn_compiler::{compile_replicas, Replica};
use qnn_nn::Network;
use qnn_tensor::Tensor3;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::time::{Duration, Instant};

/// One completed inference.
#[derive(Clone, Debug)]
pub struct Response {
    /// Request id assigned at submission (monotonic per server).
    pub id: u64,
    /// The image's logits.
    pub logits: Vec<i32>,
    /// Timing and placement breakdown.
    pub stats: RequestStats,
}

impl Response {
    /// Index of the winning class.
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        for (j, &v) in self.logits.iter().enumerate() {
            if v > self.logits[best] {
                best = j;
            }
        }
        best
    }
}

/// Why a submission was not admitted.
pub enum SubmitError {
    /// The bounded queue is full ([`AdmissionPolicy::Reject`] only); the
    /// image is handed back to the caller.
    QueueFull(Box<Tensor3<i8>>),
    /// The runtime is no longer accepting requests.
    Stopped,
}

impl fmt::Debug for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull(img) => {
                write!(f, "QueueFull({:?})", img.shape())
            }
            SubmitError::Stopped => write!(f, "Stopped"),
        }
    }
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull(_) => write!(f, "submission queue full"),
            SubmitError::Stopped => write!(f, "serving runtime stopped"),
        }
    }
}

/// Claim ticket for an in-flight request.
pub struct Ticket {
    id: u64,
    rx: Receiver<Response>,
}

impl Ticket {
    /// The request id this ticket redeems.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Block until the response arrives. Returns `None` only if the
    /// runtime was torn down without answering (a worker panic).
    pub fn wait(self) -> Option<Response> {
        self.rx.recv().ok()
    }

    /// Non-blocking poll.
    pub fn try_wait(&self) -> Option<Response> {
        self.rx.try_recv().ok()
    }
}

/// Submission-side handle passed to the `body` closure of [`serve`].
///
/// `&Client` is `Sync`: the closure may hand references to multiple
/// threads (e.g. via `std::thread::scope`) to model concurrent traffic.
pub struct Client<'a> {
    tx: SyncSender<Request>,
    admission: AdmissionPolicy,
    next_id: &'a AtomicU64,
    submitted: &'a AtomicU64,
    rejected: &'a AtomicU64,
}

impl Client<'_> {
    /// Submit one image for inference.
    pub fn submit(&self, image: Tensor3<i8>) -> Result<Ticket, SubmitError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (reply, rx) = sync_channel(1);
        let req = Request { id, image, submitted_at: Instant::now(), reply };
        match self.admission {
            AdmissionPolicy::Block => {
                self.tx.send(req).map_err(|_| SubmitError::Stopped)?;
            }
            AdmissionPolicy::Reject => match self.tx.try_send(req) {
                Ok(()) => {}
                Err(TrySendError::Full(req)) => {
                    self.rejected.fetch_add(1, Ordering::Relaxed);
                    return Err(SubmitError::QueueFull(Box::new(req.image)));
                }
                Err(TrySendError::Disconnected(_)) => return Err(SubmitError::Stopped),
            },
        }
        self.submitted.fetch_add(1, Ordering::Relaxed);
        Ok(Ticket { id, rx })
    }
}

struct Request {
    id: u64,
    image: Tensor3<i8>,
    submitted_at: Instant,
    reply: SyncSender<Response>,
}

struct Batch {
    requests: Vec<Request>,
}

#[derive(Default)]
struct BatcherStats {
    batches: u64,
    occupancy_sum: u64,
}

/// Assemble requests into batches and dispatch them per the policy.
fn run_batcher(
    rx: Receiver<Request>,
    replica_txs: Vec<SyncSender<Batch>>,
    max_batch: usize,
    deadline: Duration,
    dispatch: DispatchPolicy,
    in_flight: &[AtomicU64],
) -> BatcherStats {
    let mut stats = BatcherStats::default();
    let mut batch: Vec<Request> = Vec::with_capacity(max_batch);
    let mut first_at: Option<Instant> = None;
    let mut seq: usize = 0;

    let mut flush = |batch: &mut Vec<Request>,
                     first_at: &mut Option<Instant>,
                     stats: &mut BatcherStats| {
        if batch.is_empty() {
            return;
        }
        stats.batches += 1;
        stats.occupancy_sum += batch.len() as u64;
        let target = match dispatch {
            DispatchPolicy::RoundRobin => {
                let t = seq % replica_txs.len();
                seq += 1;
                t
            }
            // Fewest in-flight images wins, ties to the lowest id. The
            // loads move underneath us (workers decrement as batches
            // finish), but only the batcher increments, so the chosen
            // replica can only be less loaded than observed.
            DispatchPolicy::LeastLoaded => in_flight
                .iter()
                .enumerate()
                .min_by_key(|(_, load)| load.load(Ordering::Relaxed))
                .map(|(i, _)| i)
                .expect("at least one replica"),
        };
        in_flight[target].fetch_add(batch.len() as u64, Ordering::Relaxed);
        *first_at = None;
        // Blocking send: if every replica is busy and its batch slot is
        // occupied, backpressure propagates through the batcher to the
        // bounded submission queue and ultimately to the admission edge.
        replica_txs[target]
            .send(Batch { requests: std::mem::take(batch) })
            .unwrap_or_else(|_| panic!("replica {target} hung up before shutdown"));
    };

    loop {
        let msg = match first_at {
            // Empty batch: nothing to flush, wait indefinitely.
            None => rx.recv().map_err(|_| RecvTimeoutError::Disconnected),
            // Partial batch: wait out the remainder of its deadline.
            Some(t0) => rx.recv_timeout(deadline.saturating_sub(t0.elapsed())),
        };
        match msg {
            Ok(req) => {
                if batch.is_empty() {
                    first_at = Some(Instant::now());
                }
                batch.push(req);
                if batch.len() >= max_batch {
                    flush(&mut batch, &mut first_at, &mut stats);
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                flush(&mut batch, &mut first_at, &mut stats);
            }
            Err(RecvTimeoutError::Disconnected) => {
                flush(&mut batch, &mut first_at, &mut stats);
                return stats;
            }
        }
    }
}

struct WorkerOutput {
    stats: ReplicaStats,
    queue_waits: Vec<Duration>,
    latencies: Vec<Duration>,
}

/// Execute batches on one replica until its queue disconnects (drain).
/// `in_flight` is this replica's dispatch-side image count: decremented
/// once a batch is fully answered, so the batcher's least-loaded view
/// covers queued *and* running work. `synthetic_delay` injects extra busy
/// time per batch (test/bench knob modeling a slow card).
fn run_worker(
    replica: Replica,
    rx: Receiver<Batch>,
    in_flight: &AtomicU64,
    synthetic_delay: Duration,
) -> WorkerOutput {
    let mut out = WorkerOutput {
        stats: ReplicaStats {
            replica: replica.id(),
            batches: 0,
            images: 0,
            busy: Duration::ZERO,
            cycles: 0,
        },
        queue_waits: Vec::new(),
        latencies: Vec::new(),
    };
    while let Ok(batch) = rx.recv() {
        let started = Instant::now();
        let images: Vec<Tensor3<i8>> =
            batch.requests.iter().map(|r| r.image.clone()).collect();
        // A RunError here (deadlock/timeout) means the compiled pipeline
        // itself is broken — a programming error, not a load condition —
        // so it propagates as a panic with the executor's diagnostics.
        let sim = replica.run_batch(&images).unwrap_or_else(|e| {
            panic!("replica {}: batch of {} failed: {e}", replica.id(), images.len())
        });
        if !synthetic_delay.is_zero() {
            std::thread::sleep(synthetic_delay);
        }
        let busy = started.elapsed();
        out.stats.batches += 1;
        out.stats.images += batch.requests.len() as u64;
        out.stats.busy += busy;
        out.stats.cycles += sim.cycles();
        let n = batch.requests.len();
        for (i, req) in batch.requests.into_iter().enumerate() {
            let queue_wait = started.saturating_duration_since(req.submitted_at);
            let latency = req.submitted_at.elapsed();
            out.queue_waits.push(queue_wait);
            out.latencies.push(latency);
            let response = Response {
                id: req.id,
                logits: sim.logits[i].clone(),
                stats: RequestStats {
                    queue_wait,
                    latency,
                    batch_size: n,
                    replica: replica.id(),
                    cycles: sim.cycles(),
                },
            };
            // The ticket may have been dropped; the request still counts
            // as completed (the work was done).
            let _ = req.reply.send(response);
        }
        in_flight.fetch_sub(n as u64, Ordering::Relaxed);
    }
    out
}

/// Run a serving session: spin up the batcher and `config.replicas` worker
/// threads, hand a [`Client`] to `body`, and after `body` returns drain
/// every in-flight batch before tearing down.
///
/// Returns `body`'s result and the aggregate [`ServerReport`].
pub fn serve<R>(
    net: &Network,
    config: &ServerConfig,
    body: impl FnOnce(&Client<'_>) -> R,
) -> (R, ServerReport) {
    config.validate();
    let replicas = compile_replicas(net, config.replicas, &config.compile);
    let next_id = AtomicU64::new(0);
    let submitted = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    let started = Instant::now();

    let in_flight: Vec<AtomicU64> =
        (0..config.replicas).map(|_| AtomicU64::new(0)).collect();
    let (result, batcher_stats, workers) = std::thread::scope(|scope| {
        let (sub_tx, sub_rx) = sync_channel::<Request>(config.queue_depth);
        let mut replica_txs = Vec::with_capacity(replicas.len());
        let mut worker_handles = Vec::with_capacity(replicas.len());
        for (i, replica) in replicas.into_iter().enumerate() {
            // Depth 1: one batch may queue while the previous one runs, so
            // a replica never idles between back-to-back batches, but the
            // batcher cannot run arbitrarily far ahead of slow replicas.
            let (tx, rx) = sync_channel::<Batch>(1);
            replica_txs.push(tx);
            let load = &in_flight[i];
            let delay = config
                .synthetic_replica_delay
                .get(i)
                .copied()
                .unwrap_or(Duration::ZERO);
            worker_handles.push(scope.spawn(move || run_worker(replica, rx, load, delay)));
        }
        let (max_batch, deadline) = (config.max_batch, config.flush_deadline);
        let (dispatch, loads) = (config.dispatch, &in_flight);
        let batcher = scope
            .spawn(move || run_batcher(sub_rx, replica_txs, max_batch, deadline, dispatch, loads));

        let client = Client {
            tx: sub_tx,
            admission: config.admission,
            next_id: &next_id,
            submitted: &submitted,
            rejected: &rejected,
        };
        let result = body(&client);
        // Graceful shutdown: dropping the only submission sender lets the
        // batcher flush and disconnect the workers, which drain in turn.
        drop(client);

        let batcher_stats = batcher.join().expect("batcher thread panicked");
        let workers: Vec<WorkerOutput> = worker_handles
            .into_iter()
            .map(|h| h.join().expect("replica worker panicked"))
            .collect();
        (result, batcher_stats, workers)
    });
    let wall = started.elapsed();

    let mut queue_waits = Vec::new();
    let mut latencies = Vec::new();
    let mut per_replica = Vec::with_capacity(workers.len());
    let mut completed = 0u64;
    for w in workers {
        completed += w.stats.images;
        queue_waits.extend(w.queue_waits);
        latencies.extend(w.latencies);
        per_replica.push(w.stats);
    }
    per_replica.sort_by_key(|r| r.replica);

    let report = ServerReport {
        replicas: config.replicas,
        submitted: submitted.load(Ordering::Relaxed),
        completed,
        rejected: rejected.load(Ordering::Relaxed),
        batches: batcher_stats.batches,
        wall,
        mean_batch_occupancy: if batcher_stats.batches > 0 {
            batcher_stats.occupancy_sum as f64 / batcher_stats.batches as f64
        } else {
            0.0
        },
        queue_wait: LatencySummary::from_samples("queue_wait", queue_waits),
        latency: LatencySummary::from_samples("latency", latencies),
        per_replica,
    };
    (result, report)
}
