//! The serving runtime: submission queue → two-level scheduler → per-model
//! replica pools.
//!
//! Thread topology (all `std::sync::mpsc` + owned `std::thread::spawn`
//! threads, per the hermetic-build policy):
//!
//! ```text
//!  clients ──submit(model, priority, deadline)──▶ [bounded submission queue]
//!                                                        │
//!                                                  batcher thread
//!                              lanes per (model, priority); level 1 picks the
//!                            class (interactive first, per-class flush deadlines,
//!                          deadline-expired requests shed at dispatch), level 2
//!                            picks the replica inside the model's pool (least-
//!                                      loaded or round-robin)
//!                          │           │          ‖           ‖
//!                     [batch q]   [batch q]   [batch q]   [batch q]    (depth 1)
//!                          │           │          ‖           ‖
//!                      mnist/0     mnist/1     resnet/0    resnet/1    (worker
//!                          │           │          ‖           ‖      threads, one
//!                          └───────────┴─per-request reply channels─▶ tickets
//! ```
//!
//! Every batch is stamped with the model's *current* weight snapshot
//! ([`qnn_compiler::ModelArtifact`], sampled once at flush time), so a
//! [`Server::publish_weights`] swap behaves like the paper's PCIe parameter
//! streaming: in-flight batches finish on the old weights, later batches run
//! bit-identically on the new ones, and versions never mix inside a batch.
//!
//! Shutdown is explicit and drains: [`Server::shutdown`] closes admission,
//! sends the batcher a shutdown marker (FIFO-ordered after every request
//! already submitted), the batcher flushes its lanes (interactive first)
//! and drops the batch senders; each worker drains its remaining batches
//! and returns its counters. Every request admitted before `shutdown` is
//! answered — with a [`Response`] or, if its deadline expired while it
//! queued, with [`Dropped::Deadline`].

use crate::config::{AdmissionPolicy, ConfigError, DispatchPolicy, Priority, ServerConfig};
use crate::registry::{self, ModelRegistry, PublishError};
use crate::stats::{ClassStats, LatencySummary, ModelStats, ReplicaStats, RequestStats, ServerReport};
use qnn_compiler::{ArtifactCache, CompileOptions, Logits, ModelArtifact};
use qnn_nn::Network;
use qnn_tensor::Tensor3;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Model name the single-model [`serve`] shim registers.
pub const DEFAULT_MODEL: &str = "default";

/// One completed inference.
#[derive(Clone, Debug)]
pub struct Response {
    /// Request id assigned at submission (monotonic per server).
    pub id: u64,
    /// The model that served this request.
    pub model: String,
    /// The image's logits.
    pub logits: Vec<i32>,
    /// Timing and placement breakdown.
    pub stats: RequestStats,
}

impl Response {
    /// Index of the winning class (shared [`Logits`] tie-breaking: lowest
    /// index wins).
    pub fn argmax(&self) -> usize {
        Logits::new(&self.logits).argmax()
    }

    /// The `k` best (class, score) pairs, best first.
    pub fn top_k(&self, k: usize) -> Vec<(usize, i32)> {
        Logits::new(&self.logits).top_k(k)
    }
}

/// Why an admitted request was answered without a [`Response`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dropped {
    /// Shed at dispatch: the request's deadline had already passed when
    /// its batch flushed. Counted in [`ServerReport::shed`], never
    /// silently served late.
    Deadline,
    /// The server tore down (or a worker died) before the request was
    /// served.
    Stopped,
}

impl fmt::Display for Dropped {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dropped::Deadline => write!(f, "shed at dispatch: deadline exceeded"),
            Dropped::Stopped => write!(f, "server stopped before answering"),
        }
    }
}

impl std::error::Error for Dropped {}

/// Why a submission was not admitted.
pub enum SubmitError {
    /// The bounded queue is full ([`AdmissionPolicy::Reject`] only); the
    /// image is handed back to the caller.
    QueueFull(Box<Tensor3<i8>>),
    /// [`SubmitOptions::model`] names a model that is not registered; the
    /// image is handed back to the caller.
    UnknownModel {
        /// The unresolved name.
        model: String,
        /// The image handed back.
        image: Box<Tensor3<i8>>,
    },
    /// No model was named and the server hosts more than one, so the
    /// target is ambiguous; the image is handed back to the caller.
    AmbiguousModel(Box<Tensor3<i8>>),
    /// The runtime is no longer accepting requests.
    Stopped,
}

impl fmt::Debug for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull(img) => write!(f, "QueueFull({:?})", img.shape()),
            SubmitError::UnknownModel { model, image } => {
                write!(f, "UnknownModel({model:?}, {:?})", image.shape())
            }
            SubmitError::AmbiguousModel(img) => {
                write!(f, "AmbiguousModel({:?})", img.shape())
            }
            SubmitError::Stopped => write!(f, "Stopped"),
        }
    }
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull(_) => write!(f, "submission queue full"),
            SubmitError::UnknownModel { model, .. } => {
                write!(f, "no model named {model:?} is registered")
            }
            SubmitError::AmbiguousModel(_) => {
                write!(f, "several models are registered; name one in SubmitOptions")
            }
            SubmitError::Stopped => write!(f, "serving runtime stopped"),
        }
    }
}

/// Claim ticket for an in-flight request.
pub struct Ticket {
    id: u64,
    rx: Receiver<Result<Response, Dropped>>,
}

impl Ticket {
    /// The request id this ticket redeems.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Block until the request resolves: a [`Response`], or why it was
    /// dropped — [`Dropped::Deadline`] for a dispatch-time shed,
    /// [`Dropped::Stopped`] if the runtime tore down without answering.
    pub fn wait(self) -> Result<Response, Dropped> {
        self.rx.recv().unwrap_or(Err(Dropped::Stopped))
    }

    /// Non-blocking poll; `None` while the request is still in flight.
    pub fn try_wait(&self) -> Option<Result<Response, Dropped>> {
        self.rx.try_recv().ok()
    }
}

/// Per-request routing and scheduling options for [`Client::submit_with`].
#[derive(Clone, Debug, Default)]
pub struct SubmitOptions {
    /// Target model. `None` resolves to the server's sole registered model
    /// and is an [`SubmitError::AmbiguousModel`] error when several are
    /// registered.
    pub model: Option<String>,
    /// Scheduling class ([`Priority::Batch`] by default).
    pub priority: Priority,
    /// Relative latency budget, measured from submission. A request whose
    /// budget has already elapsed when its batch is dispatched is shed
    /// with [`Dropped::Deadline`] instead of being served late. `None`
    /// (the default) never sheds.
    pub deadline: Option<Duration>,
}

impl SubmitOptions {
    /// Options targeting `model` with default class and no deadline.
    pub fn model(model: impl Into<String>) -> Self {
        Self { model: Some(model.into()), ..Self::default() }
    }

    /// Set the scheduling class.
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Set the relative latency budget.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

struct Shared {
    registry: ModelRegistry,
    next_id: AtomicU64,
    submitted: AtomicU64,
    rejected: AtomicU64,
    stopped: AtomicBool,
}

/// Submission-side handle, created by [`Server::client`].
///
/// `Client` is `Clone` and `&Client` is `Sync`: hand clones (or references)
/// to as many submitter threads as the traffic model needs.
#[derive(Clone)]
pub struct Client {
    tx: SyncSender<Msg>,
    admission: AdmissionPolicy,
    shared: Arc<Shared>,
}

impl Client {
    /// Submit one image to the server's sole model at default priority —
    /// the single-model convenience path.
    pub fn submit(&self, image: Tensor3<i8>) -> Result<Ticket, SubmitError> {
        self.submit_with(image, SubmitOptions::default())
    }

    /// Submit one image with explicit routing and scheduling options.
    pub fn submit_with(
        &self,
        image: Tensor3<i8>,
        opts: SubmitOptions,
    ) -> Result<Ticket, SubmitError> {
        if self.shared.stopped.load(Ordering::Acquire) {
            return Err(SubmitError::Stopped);
        }
        let model = match &opts.model {
            Some(name) => match self.shared.registry.resolve(name) {
                Some(idx) => idx,
                None => {
                    return Err(SubmitError::UnknownModel {
                        model: name.clone(),
                        image: Box::new(image),
                    })
                }
            },
            None if self.shared.registry.len() == 1 => 0,
            None => return Err(SubmitError::AmbiguousModel(Box::new(image))),
        };
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let (reply, rx) = sync_channel(1);
        let req = Request {
            id,
            model,
            priority: opts.priority,
            deadline: opts.deadline,
            image,
            submitted_at: Instant::now(),
            reply,
        };
        match self.admission {
            AdmissionPolicy::Block => {
                self.tx.send(Msg::Request(req)).map_err(|_| SubmitError::Stopped)?;
            }
            AdmissionPolicy::Reject => match self.tx.try_send(Msg::Request(req)) {
                Ok(()) => {}
                Err(TrySendError::Full(Msg::Request(req))) => {
                    // A rejected attempt still counts as submitted, so the
                    // admission ledger stays a partition:
                    // completed + rejected + shed == submitted.
                    self.shared.submitted.fetch_add(1, Ordering::Relaxed);
                    self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                    return Err(SubmitError::QueueFull(Box::new(req.image)));
                }
                Err(TrySendError::Full(Msg::Shutdown)) => unreachable!("only clients queue requests"),
                Err(TrySendError::Disconnected(_)) => return Err(SubmitError::Stopped),
            },
        }
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        Ok(Ticket { id, rx })
    }
}

struct Request {
    id: u64,
    model: usize,
    priority: Priority,
    deadline: Option<Duration>,
    image: Tensor3<i8>,
    submitted_at: Instant,
    reply: SyncSender<Result<Response, Dropped>>,
}

enum Msg {
    Request(Request),
    Shutdown,
}

struct Batch {
    /// Server-wide batch sequence number (surfaces as
    /// [`RequestStats::batch_id`]).
    id: u64,
    priority: Priority,
    /// The weight snapshot the whole batch runs on — sampled once at
    /// flush, so a concurrent publish can never split a batch across
    /// parameter versions.
    artifact: Arc<ModelArtifact>,
    requests: Vec<Request>,
}

/// Batcher-side view of one model's replica pool.
struct PoolHandle {
    txs: Vec<SyncSender<Batch>>,
    in_flight: Arc<Vec<AtomicU64>>,
    /// Round-robin cursor (per pool, so shard order is reproducible per
    /// model regardless of other models' traffic).
    seq: usize,
}

#[derive(Default)]
struct Lane {
    pending: Vec<Request>,
    first_at: Option<Instant>,
}

struct BatcherStats {
    batches: u64,
    occupancy_sum: u64,
    /// Shed counts per model per class index.
    shed: Vec<[u64; 2]>,
}

struct BatcherKnobs {
    max_batch: usize,
    flush_deadline: Duration,
    interactive_flush_deadline: Duration,
    dispatch: DispatchPolicy,
}

impl BatcherKnobs {
    fn deadline_of(&self, priority: Priority) -> Duration {
        match priority {
            Priority::Interactive => self.interactive_flush_deadline,
            Priority::Batch => self.flush_deadline,
        }
    }
}

/// Close `lane` into a batch: shed deadline-expired requests, pin the
/// model's current weight snapshot, and dispatch to a pool replica.
fn flush_lane(
    lane: &mut Lane,
    pool: &mut PoolHandle,
    model: usize,
    priority: Priority,
    registry: &ModelRegistry,
    dispatch: DispatchPolicy,
    stats: &mut BatcherStats,
) {
    lane.first_at = None;
    if lane.pending.is_empty() {
        return;
    }
    let requests = std::mem::take(&mut lane.pending);
    // Dispatch-time deadline check: a request that already blew its
    // latency budget is answered `Dropped::Deadline` now — running it
    // would waste a pipeline slot on an answer nobody is waiting for.
    let now = Instant::now();
    let mut kept = Vec::with_capacity(requests.len());
    for req in requests {
        match req.deadline {
            Some(budget) if now.duration_since(req.submitted_at) > budget => {
                stats.shed[model][priority.index()] += 1;
                let _ = req.reply.send(Err(Dropped::Deadline));
            }
            _ => kept.push(req),
        }
    }
    if kept.is_empty() {
        return;
    }
    let target = match dispatch {
        DispatchPolicy::RoundRobin => {
            let t = pool.seq % pool.txs.len();
            pool.seq += 1;
            t
        }
        // Fewest in-flight images wins, ties to the lowest id. The loads
        // move underneath us (workers decrement as batches finish), but
        // only the batcher increments, so the chosen replica can only be
        // less loaded than observed.
        DispatchPolicy::LeastLoaded => pool
            .in_flight
            .iter()
            .enumerate()
            .min_by_key(|(_, load)| load.load(Ordering::Relaxed))
            .map(|(i, _)| i)
            .expect("at least one replica"),
    };
    let id = stats.batches;
    stats.batches += 1;
    stats.occupancy_sum += kept.len() as u64;
    pool.in_flight[target].fetch_add(kept.len() as u64, Ordering::Relaxed);
    let artifact = registry.current(model);
    // Blocking send: if every replica of the pool is busy and its batch
    // slot occupied, backpressure propagates through the batcher to the
    // bounded submission queue and ultimately to the admission edge.
    pool.txs[target]
        .send(Batch { id, priority, artifact, requests: kept })
        .unwrap_or_else(|_| panic!("model {model} replica {target} hung up before shutdown"));
}

/// Flush every lane whose class deadline has expired — interactive lanes
/// first, so latency traffic is dispatched ahead of throughput traffic at
/// every scheduling decision.
fn flush_expired(
    lanes: &mut [[Lane; 2]],
    pools: &mut [PoolHandle],
    registry: &ModelRegistry,
    knobs: &BatcherKnobs,
    stats: &mut BatcherStats,
) {
    let now = Instant::now();
    for priority in Priority::ALL {
        for model in 0..lanes.len() {
            let lane = &mut lanes[model][priority.index()];
            let expired = lane
                .first_at
                .is_some_and(|t0| now.duration_since(t0) >= knobs.deadline_of(priority));
            if expired {
                flush_lane(lane, &mut pools[model], model, priority, registry, knobs.dispatch, stats);
            }
        }
    }
}

/// Assemble requests into per-(model, class) batches and dispatch them.
fn run_batcher(
    rx: Receiver<Msg>,
    mut pools: Vec<PoolHandle>,
    shared: Arc<Shared>,
    knobs: BatcherKnobs,
) -> BatcherStats {
    let models = pools.len();
    let mut stats =
        BatcherStats { batches: 0, occupancy_sum: 0, shed: vec![[0; 2]; models] };
    let mut lanes: Vec<[Lane; 2]> = (0..models).map(|_| Default::default()).collect();
    let registry = &shared.registry;
    loop {
        // Wake at the earliest lane deadline: each lane's clock starts at
        // its *own* first queued request and runs against its *own* class
        // deadline (a partial interactive batch flushes on time even while
        // a batch-class lane is still filling).
        let mut wake: Option<Instant> = None;
        for pair in &lanes {
            for priority in Priority::ALL {
                if let Some(t0) = pair[priority.index()].first_at {
                    let at = t0 + knobs.deadline_of(priority);
                    wake = Some(wake.map_or(at, |w| w.min(at)));
                }
            }
        }
        let msg = match wake {
            None => rx.recv().map_err(|_| RecvTimeoutError::Disconnected),
            Some(at) => rx.recv_timeout(at.saturating_duration_since(Instant::now())),
        };
        match msg {
            Ok(Msg::Request(req)) => {
                let (model, priority) = (req.model, req.priority);
                let lane = &mut lanes[model][priority.index()];
                if lane.pending.is_empty() {
                    lane.first_at = Some(Instant::now());
                }
                lane.pending.push(req);
                if lane.pending.len() >= knobs.max_batch {
                    flush_lane(
                        lane,
                        &mut pools[model],
                        model,
                        priority,
                        registry,
                        knobs.dispatch,
                        &mut stats,
                    );
                }
                // A steady request stream keeps `recv_timeout` from ever
                // timing out, so expired lanes are also checked after
                // every message — without this, flood traffic in one lane
                // would starve the deadline of every other lane.
                flush_expired(&mut lanes, &mut pools, registry, &knobs, &mut stats);
            }
            Err(RecvTimeoutError::Timeout) => {
                flush_expired(&mut lanes, &mut pools, registry, &knobs, &mut stats);
            }
            Ok(Msg::Shutdown) | Err(RecvTimeoutError::Disconnected) => {
                for priority in Priority::ALL {
                    for model in 0..models {
                        flush_lane(
                            &mut lanes[model][priority.index()],
                            &mut pools[model],
                            model,
                            priority,
                            registry,
                            knobs.dispatch,
                            &mut stats,
                        );
                    }
                }
                return stats;
            }
        }
    }
}

struct Sample {
    priority: Priority,
    queue_wait: Duration,
    latency: Duration,
}

struct WorkerOutput {
    model_idx: usize,
    stats: ReplicaStats,
    samples: Vec<Sample>,
}

/// Execute batches on one pool replica until its queue disconnects
/// (drain). `in_flight[pool_slot]` is this replica's dispatch-side image
/// count: decremented once a batch is fully answered, so the batcher's
/// least-loaded view covers queued *and* running work. `synthetic_delay`
/// injects extra busy time per batch (test/bench knob modeling a slow
/// card).
#[allow(clippy::too_many_arguments)]
fn run_worker(
    model_idx: usize,
    model: Arc<str>,
    global_id: usize,
    pool_slot: usize,
    rx: Receiver<Batch>,
    in_flight: Arc<Vec<AtomicU64>>,
    synthetic_delay: Duration,
) -> WorkerOutput {
    let mut out = WorkerOutput {
        model_idx,
        stats: ReplicaStats {
            replica: global_id,
            model: model.to_string(),
            batches: 0,
            images: 0,
            busy: Duration::ZERO,
            cycles: 0,
        },
        samples: Vec::new(),
    };
    while let Ok(batch) = rx.recv() {
        let Batch { id: batch_id, priority, artifact, requests } = batch;
        let started = Instant::now();
        let images: Vec<Tensor3<i8>> = requests.iter().map(|r| r.image.clone()).collect();
        // A RunError here (deadlock/timeout) means the compiled pipeline
        // itself is broken — a programming error, not a load condition —
        // so it propagates as a panic with the executor's diagnostics.
        let sim = artifact.run_batch(&images).unwrap_or_else(|e| {
            panic!("model {model} replica {global_id}: batch of {} failed: {e}", images.len())
        });
        if !synthetic_delay.is_zero() {
            std::thread::sleep(synthetic_delay);
        }
        let busy = started.elapsed();
        out.stats.batches += 1;
        out.stats.images += requests.len() as u64;
        out.stats.busy += busy;
        out.stats.cycles += sim.cycles();
        let n = requests.len();
        for (i, req) in requests.into_iter().enumerate() {
            let queue_wait = started.saturating_duration_since(req.submitted_at);
            let latency = req.submitted_at.elapsed();
            out.samples.push(Sample { priority, queue_wait, latency });
            let response = Response {
                id: req.id,
                model: model.to_string(),
                logits: sim.logits[i].clone(),
                stats: RequestStats {
                    queue_wait,
                    latency,
                    batch_size: n,
                    batch_id,
                    replica: global_id,
                    priority,
                    weight_version: artifact.version(),
                    cycles: sim.cycles(),
                },
            };
            // The ticket may have been dropped; the request still counts
            // as completed (the work was done).
            let _ = req.reply.send(Ok(response));
        }
        in_flight[pool_slot].fetch_sub(n as u64, Ordering::Relaxed);
    }
    out
}

/// Per-model overrides for [`ServerBuilder::model_with`]; unset fields
/// fall back to the server-wide [`ServerConfig`].
#[derive(Clone, Debug, Default)]
pub struct ModelOptions {
    /// Pool size for this model (defaults to `config.replicas`). Size
    /// pools against each model's offered load, not one global knob.
    pub replicas: Option<usize>,
    /// Compile options for this model (defaults to `config.compile`).
    pub compile: Option<CompileOptions>,
}

impl ModelOptions {
    /// No overrides.
    pub fn new() -> Self {
        Self::default()
    }

    /// Override this model's pool size.
    pub fn replicas(mut self, replicas: usize) -> Self {
        self.replicas = Some(replicas);
        self
    }

    /// Override this model's compile options.
    pub fn compile(mut self, compile: CompileOptions) -> Self {
        self.compile = Some(compile);
        self
    }
}

/// Registers models against a [`ServerConfig`] and starts the runtime.
pub struct ServerBuilder {
    config: ServerConfig,
    models: Vec<(String, Network, ModelOptions)>,
}

impl ServerBuilder {
    /// Replace the server-wide configuration (defaults to
    /// [`ServerConfig::default`]).
    pub fn config(mut self, config: ServerConfig) -> Self {
        self.config = config;
        self
    }

    /// Register `net` under `name` with the server-wide pool defaults.
    pub fn model(self, name: impl Into<String>, net: &Network) -> Self {
        self.model_with(name, net, ModelOptions::default())
    }

    /// Register `net` under `name` with per-model overrides.
    pub fn model_with(
        mut self,
        name: impl Into<String>,
        net: &Network,
        options: ModelOptions,
    ) -> Self {
        self.models.push((name.into(), net.clone(), options));
        self
    }

    /// Validate, compile every registered model (through an
    /// [`ArtifactCache`] keyed by options, so pools share parameter
    /// snapshots), spawn the batcher and every pool's workers, and return
    /// the running [`Server`].
    pub fn start(self) -> Result<Server, ConfigError> {
        let config = self.config;
        config.validate()?;
        if self.models.is_empty() {
            return Err(ConfigError::NoModels);
        }
        for (i, (name, _, _)) in self.models.iter().enumerate() {
            if self.models[..i].iter().any(|(n, _, _)| n == name) {
                return Err(ConfigError::DuplicateModel(name.clone()));
            }
        }

        let mut cache = ArtifactCache::new();
        let mut entries = Vec::with_capacity(self.models.len());
        let mut pool_sizes = Vec::with_capacity(self.models.len());
        let mut first_replica = 0usize;
        for (name, net, opts) in &self.models {
            let replicas = opts.replicas.unwrap_or(config.replicas);
            if replicas == 0 {
                return Err(ConfigError::ZeroReplicas);
            }
            let compile = opts.compile.as_ref().unwrap_or(&config.compile);
            let artifact = cache.get_or_compile(name, net, compile);
            entries.push(registry::entry(name.clone(), artifact, replicas, first_replica));
            pool_sizes.push(replicas);
            first_replica += replicas;
        }
        let shared = Arc::new(Shared {
            registry: ModelRegistry::new(entries),
            next_id: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            stopped: AtomicBool::new(false),
        });

        let mut pools = Vec::with_capacity(pool_sizes.len());
        let mut workers = Vec::new();
        for (model_idx, &replicas) in pool_sizes.iter().enumerate() {
            let entry = shared.registry.entry(model_idx);
            let in_flight: Arc<Vec<AtomicU64>> =
                Arc::new((0..replicas).map(|_| AtomicU64::new(0)).collect());
            let mut txs = Vec::with_capacity(replicas);
            for slot in 0..replicas {
                // Depth 1: one batch may queue while the previous one
                // runs, so a replica never idles between back-to-back
                // batches, but the batcher cannot run arbitrarily far
                // ahead of slow replicas.
                let (tx, rx) = sync_channel::<Batch>(1);
                txs.push(tx);
                let name = Arc::clone(&entry.name);
                let loads = Arc::clone(&in_flight);
                let delay = config
                    .synthetic_replica_delay
                    .get(slot)
                    .copied()
                    .unwrap_or(Duration::ZERO);
                let global_id = entry.first_replica + slot;
                workers.push(std::thread::spawn(move || {
                    run_worker(model_idx, name, global_id, slot, rx, loads, delay)
                }));
            }
            pools.push(PoolHandle { txs, in_flight, seq: 0 });
        }

        let (sub_tx, sub_rx) = sync_channel::<Msg>(config.queue_depth);
        let knobs = BatcherKnobs {
            max_batch: config.max_batch,
            flush_deadline: config.flush_deadline,
            interactive_flush_deadline: config.interactive_flush_deadline,
            dispatch: config.dispatch,
        };
        let batcher_shared = Arc::clone(&shared);
        let batcher =
            std::thread::spawn(move || run_batcher(sub_rx, pools, batcher_shared, knobs));

        Ok(Server {
            shared,
            tx: sub_tx,
            admission: config.admission,
            batcher,
            workers,
            started: Instant::now(),
        })
    }
}

/// A running multi-model serving instance.
///
/// Obtain one through [`Server::builder`], submit through [`Server::client`]
/// handles, swap weights with [`Server::publish_weights`], and finish with
/// [`Server::shutdown`], which drains and returns the [`ServerReport`].
pub struct Server {
    shared: Arc<Shared>,
    tx: SyncSender<Msg>,
    admission: AdmissionPolicy,
    batcher: JoinHandle<BatcherStats>,
    workers: Vec<JoinHandle<WorkerOutput>>,
    started: Instant,
}

impl Server {
    /// Start describing a server: `Server::builder().model(...).start()`.
    pub fn builder() -> ServerBuilder {
        ServerBuilder { config: ServerConfig::default(), models: Vec::new() }
    }

    /// A new submission handle. Clients are independent and cheap; create
    /// one per traffic source.
    pub fn client(&self) -> Client {
        Client {
            tx: self.tx.clone(),
            admission: self.admission,
            shared: Arc::clone(&self.shared),
        }
    }

    /// The model registry (names, current weight versions).
    pub fn registry(&self) -> &ModelRegistry {
        &self.shared.registry
    }

    /// Registered model names, in registration order.
    pub fn models(&self) -> Vec<String> {
        self.shared.registry.names()
    }

    /// Publish new parameters for `model` — the hot-swap path. Batches
    /// already dispatched finish on the old weights; every batch flushed
    /// after this call runs bit-identically on the new ones. Returns the
    /// new weight version.
    pub fn publish_weights(&self, model: &str, net: Network) -> Result<u64, PublishError> {
        self.shared.registry.publish(model, net)
    }

    /// Stop admission, drain every in-flight batch, join all threads, and
    /// return the aggregate report.
    ///
    /// Requests admitted before the call are answered (completed or shed);
    /// `submit` calls racing the shutdown may instead resolve their
    /// tickets to [`Dropped::Stopped`].
    pub fn shutdown(self) -> ServerReport {
        self.shared.stopped.store(true, Ordering::Release);
        // FIFO marker: everything already in the queue is processed first.
        let _ = self.tx.send(Msg::Shutdown);
        drop(self.tx);
        let batcher_stats = self.batcher.join().expect("batcher thread panicked");
        let outputs: Vec<WorkerOutput> = self
            .workers
            .into_iter()
            .map(|h| h.join().expect("replica worker panicked"))
            .collect();
        let wall = self.started.elapsed();
        build_report(&self.shared, batcher_stats, outputs, wall)
    }
}

fn build_report(
    shared: &Shared,
    batcher: BatcherStats,
    outputs: Vec<WorkerOutput>,
    wall: Duration,
) -> ServerReport {
    let registry = &shared.registry;
    let models = registry.len();

    let mut queue_waits = Vec::new();
    let mut latencies = Vec::new();
    let mut per_replica = Vec::with_capacity(outputs.len());
    let mut completed = 0u64;
    let mut class_completed = vec![[0u64; 2]; models];
    let mut class_latencies: Vec<[Vec<Duration>; 2]> =
        (0..models).map(|_| Default::default()).collect();
    for out in outputs {
        completed += out.stats.images;
        for s in out.samples {
            queue_waits.push(s.queue_wait);
            latencies.push(s.latency);
            class_completed[out.model_idx][s.priority.index()] += 1;
            class_latencies[out.model_idx][s.priority.index()].push(s.latency);
        }
        per_replica.push(out.stats);
    }
    per_replica.sort_by_key(|r| r.replica);

    let mut per_model = Vec::with_capacity(models);
    for m in 0..models {
        let entry = registry.entry(m);
        let mut model_latencies = Vec::new();
        let mut per_priority = Vec::with_capacity(2);
        let (mut m_completed, mut m_shed) = (0u64, 0u64);
        for priority in Priority::ALL {
            let i = priority.index();
            m_completed += class_completed[m][i];
            m_shed += batcher.shed[m][i];
            model_latencies.extend_from_slice(&class_latencies[m][i]);
            per_priority.push(ClassStats {
                priority,
                completed: class_completed[m][i],
                shed: batcher.shed[m][i],
                latency: LatencySummary::from_samples("latency", class_latencies[m][i].clone()),
            });
        }
        per_model.push(ModelStats {
            model: entry.name.to_string(),
            replicas: entry.replicas,
            completed: m_completed,
            shed: m_shed,
            weight_publishes: registry.publishes(m),
            latency: LatencySummary::from_samples("latency", model_latencies),
            per_priority,
        });
    }

    let per_priority = Priority::ALL
        .iter()
        .map(|&priority| {
            let i = priority.index();
            let mut samples = Vec::new();
            for lanes in &class_latencies {
                samples.extend_from_slice(&lanes[i]);
            }
            ClassStats {
                priority,
                completed: (0..models).map(|m| class_completed[m][i]).sum(),
                shed: (0..models).map(|m| batcher.shed[m][i]).sum(),
                latency: LatencySummary::from_samples("latency", samples),
            }
        })
        .collect();

    ServerReport {
        replicas: (0..models).map(|m| registry.entry(m).replicas).sum(),
        submitted: shared.submitted.load(Ordering::Relaxed),
        completed,
        rejected: shared.rejected.load(Ordering::Relaxed),
        shed: batcher.shed.iter().map(|s| s[0] + s[1]).sum(),
        batches: batcher.batches,
        wall,
        mean_batch_occupancy: if batcher.batches > 0 {
            batcher.occupancy_sum as f64 / batcher.batches as f64
        } else {
            0.0
        },
        queue_wait: LatencySummary::from_samples("queue_wait", queue_waits),
        latency: LatencySummary::from_samples("latency", latencies),
        per_replica,
        per_model,
        per_priority,
    }
}

/// Run a single-model serving session — the legacy closure entrypoint,
/// now a thin shim over [`Server`]: it registers `net` as
/// [`DEFAULT_MODEL`], hands a [`Client`] to `body`, and shuts the server
/// down (draining every in-flight batch) after `body` returns.
///
/// Returns `body`'s result and the aggregate [`ServerReport`].
///
/// # Panics
/// Panics when `config` is invalid — new code should use
/// [`Server::builder`] with [`ServerConfig::builder`], which surface
/// [`ConfigError`] instead.
pub fn serve<R>(
    net: &Network,
    config: &ServerConfig,
    body: impl FnOnce(&Client) -> R,
) -> (R, ServerReport) {
    let server = Server::builder()
        .config(config.clone())
        .model(DEFAULT_MODEL, net)
        .start()
        .unwrap_or_else(|e| panic!("invalid server configuration: {e}"));
    let client = server.client();
    let result = body(&client);
    drop(client);
    (result, server.shutdown())
}
