//! The serving runtime: submission queue → two-level scheduler → per-model
//! replica pools.
//!
//! Thread topology (all `std::sync::mpsc` + owned `std::thread::spawn`
//! threads, per the hermetic-build policy):
//!
//! ```text
//!  clients ──submit(model, priority, deadline)──▶ [bounded submission queue]
//!                                                        │
//!                                                  batcher thread
//!                              lanes per (model, priority); level 1 picks the
//!                            class (interactive first, per-class flush deadlines,
//!                          deadline-expired requests shed at dispatch), level 2
//!                            picks the replica inside the model's pool (least-
//!                                      loaded or round-robin)
//!                          │           │          ‖           ‖
//!                     [batch q]   [batch q]   [batch q]   [batch q]    (depth 1)
//!                          │           │          ‖           ‖
//!                      mnist/0     mnist/1     resnet/0    resnet/1    (worker
//!                          │           │          ‖           ‖      threads, one
//!                          └───────────┴─per-request reply channels─▶ tickets
//! ```
//!
//! Every batch is stamped with the model's *current* weight snapshot
//! ([`qnn_compiler::ModelArtifact`], sampled once at flush time), so a
//! [`Server::publish_weights`] swap behaves like the paper's PCIe parameter
//! streaming: in-flight batches finish on the old weights, later batches run
//! bit-identically on the new ones, and versions never mix inside a batch.
//!
//! Shutdown is explicit and drains: [`Server::shutdown`] closes admission,
//! sends the batcher a shutdown marker (FIFO-ordered after every request
//! already submitted), the batcher flushes its lanes (interactive first)
//! and drops the batch senders; each worker drains its remaining batches
//! and returns its counters. Every request admitted before `shutdown` is
//! answered — with a [`Response`] or, if its deadline expired while it
//! queued, with [`Dropped::Deadline`].

use crate::config::{AdmissionPolicy, ConfigError, DispatchPolicy, Priority, ServerConfig};
use crate::registry::{self, ModelRegistry, PublishError};
use crate::stats::{
    ClassStats, LatencySummary, LoadWindow, ModelStats, ReplicaStats, RequestStats, ServerReport,
};
use qnn_compiler::{ArtifactCache, CompileOptions, Logits, ModelArtifact};
use qnn_nn::Network;
use qnn_tensor::Tensor3;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{
    channel, sync_channel, Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError,
};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Model name the single-model [`serve`] shim registers.
pub const DEFAULT_MODEL: &str = "default";

/// One completed inference.
#[derive(Clone, Debug)]
pub struct Response {
    /// Request id assigned at submission (monotonic per server).
    pub id: u64,
    /// The model that served this request.
    pub model: String,
    /// The image's logits.
    pub logits: Vec<i32>,
    /// Timing and placement breakdown.
    pub stats: RequestStats,
}

impl Response {
    /// Index of the winning class (shared [`Logits`] tie-breaking: lowest
    /// index wins).
    pub fn argmax(&self) -> usize {
        Logits::new(&self.logits).argmax()
    }

    /// The `k` best (class, score) pairs, best first.
    pub fn top_k(&self, k: usize) -> Vec<(usize, i32)> {
        Logits::new(&self.logits).top_k(k)
    }
}

/// Why an admitted request was answered without a [`Response`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dropped {
    /// Shed at dispatch: the request's deadline had already passed when
    /// its batch flushed. Counted in [`ServerReport::shed`], never
    /// silently served late.
    Deadline,
    /// The server tore down (or a worker died) before the request was
    /// served.
    Stopped,
}

impl fmt::Display for Dropped {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dropped::Deadline => write!(f, "shed at dispatch: deadline exceeded"),
            Dropped::Stopped => write!(f, "server stopped before answering"),
        }
    }
}

impl std::error::Error for Dropped {}

/// Why a submission was not admitted.
pub enum SubmitError {
    /// The bounded queue is full ([`AdmissionPolicy::Reject`] only); the
    /// image is handed back to the caller.
    QueueFull(Box<Tensor3<i8>>),
    /// [`SubmitOptions::model`] names a model that is not registered; the
    /// image is handed back to the caller.
    UnknownModel {
        /// The unresolved name.
        model: String,
        /// The image handed back.
        image: Box<Tensor3<i8>>,
    },
    /// No model was named and the server hosts more than one, so the
    /// target is ambiguous; the image is handed back to the caller.
    AmbiguousModel(Box<Tensor3<i8>>),
    /// The runtime is no longer accepting requests.
    Stopped,
}

impl fmt::Debug for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull(img) => write!(f, "QueueFull({:?})", img.shape()),
            SubmitError::UnknownModel { model, image } => {
                write!(f, "UnknownModel({model:?}, {:?})", image.shape())
            }
            SubmitError::AmbiguousModel(img) => {
                write!(f, "AmbiguousModel({:?})", img.shape())
            }
            SubmitError::Stopped => write!(f, "Stopped"),
        }
    }
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull(_) => write!(f, "submission queue full"),
            SubmitError::UnknownModel { model, .. } => {
                write!(f, "no model named {model:?} is registered")
            }
            SubmitError::AmbiguousModel(_) => {
                write!(f, "several models are registered; name one in SubmitOptions")
            }
            SubmitError::Stopped => write!(f, "serving runtime stopped"),
        }
    }
}

/// Claim ticket for an in-flight request.
pub struct Ticket {
    id: u64,
    rx: Receiver<Result<Response, Dropped>>,
}

impl Ticket {
    /// The request id this ticket redeems.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Block until the request resolves: a [`Response`], or why it was
    /// dropped — [`Dropped::Deadline`] for a dispatch-time shed,
    /// [`Dropped::Stopped`] if the runtime tore down without answering.
    pub fn wait(self) -> Result<Response, Dropped> {
        self.rx.recv().unwrap_or(Err(Dropped::Stopped))
    }

    /// Bounded wait: block at most `timeout` for the request to resolve.
    ///
    /// `None` means the request is still in flight when the budget runs
    /// out — the ticket stays redeemable, so callers (the TCP front-end in
    /// particular) can retry or give up without hanging forever on a lost
    /// worker. A ticket whose server has torn down resolves to
    /// `Some(Err(Dropped::Stopped))`. A resolved ticket answers at most
    /// once; later calls report `Dropped::Stopped`.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<Response, Dropped>> {
        match self.rx.recv_timeout(timeout) {
            Ok(resolution) => Some(resolution),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => Some(Err(Dropped::Stopped)),
        }
    }

    /// Non-blocking poll; `None` while the request is still in flight.
    pub fn try_wait(&self) -> Option<Result<Response, Dropped>> {
        self.rx.try_recv().ok()
    }
}

/// Per-request routing and scheduling options for [`Client::submit_with`].
#[derive(Clone, Debug, Default)]
pub struct SubmitOptions {
    /// Target model. `None` resolves to the server's sole registered model
    /// and is an [`SubmitError::AmbiguousModel`] error when several are
    /// registered.
    pub model: Option<String>,
    /// Scheduling class ([`Priority::Batch`] by default).
    pub priority: Priority,
    /// Relative latency budget, measured from submission. A request whose
    /// budget has already elapsed when its batch is dispatched is shed
    /// with [`Dropped::Deadline`] instead of being served late. `None`
    /// (the default) never sheds.
    pub deadline: Option<Duration>,
}

impl SubmitOptions {
    /// Options targeting `model` with default class and no deadline.
    pub fn model(model: impl Into<String>) -> Self {
        Self { model: Some(model.into()), ..Self::default() }
    }

    /// Set the scheduling class.
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Set the relative latency budget.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

struct Shared {
    registry: ModelRegistry,
    next_id: AtomicU64,
    /// Global replica id allocator — replicas spawned by a pool resize get
    /// fresh ids, so `RequestStats::replica` stays unique server-wide.
    next_replica: AtomicU64,
    submitted: AtomicU64,
    rejected: AtomicU64,
    stopped: AtomicBool,
}

/// Submission-side handle, created by [`Server::client`].
///
/// `Client` is `Clone` and `&Client` is `Sync`: hand clones (or references)
/// to as many submitter threads as the traffic model needs.
#[derive(Clone)]
pub struct Client {
    tx: SyncSender<Msg>,
    admission: AdmissionPolicy,
    shared: Arc<Shared>,
}

impl Client {
    /// Submit one image to the server's sole model at default priority —
    /// the single-model convenience path.
    pub fn submit(&self, image: Tensor3<i8>) -> Result<Ticket, SubmitError> {
        self.submit_with(image, SubmitOptions::default())
    }

    /// Submit one image with explicit routing and scheduling options.
    pub fn submit_with(
        &self,
        image: Tensor3<i8>,
        opts: SubmitOptions,
    ) -> Result<Ticket, SubmitError> {
        if self.shared.stopped.load(Ordering::Acquire) {
            return Err(SubmitError::Stopped);
        }
        let model = match &opts.model {
            Some(name) => match self.shared.registry.resolve(name) {
                Some(idx) => idx,
                None => {
                    return Err(SubmitError::UnknownModel {
                        model: name.clone(),
                        image: Box::new(image),
                    })
                }
            },
            None if self.shared.registry.len() == 1 => 0,
            None => return Err(SubmitError::AmbiguousModel(Box::new(image))),
        };
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let (reply, rx) = sync_channel(1);
        let req = Request {
            id,
            model,
            priority: opts.priority,
            deadline: opts.deadline,
            image,
            submitted_at: Instant::now(),
            reply,
        };
        match self.admission {
            AdmissionPolicy::Block => {
                self.tx.send(Msg::Request(req)).map_err(|_| SubmitError::Stopped)?;
            }
            AdmissionPolicy::Reject => match self.tx.try_send(Msg::Request(req)) {
                Ok(()) => {}
                Err(TrySendError::Full(Msg::Request(req))) => {
                    // A rejected attempt still counts as submitted, so the
                    // admission ledger stays a partition:
                    // completed + rejected + shed == submitted.
                    self.shared.submitted.fetch_add(1, Ordering::Relaxed);
                    self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                    return Err(SubmitError::QueueFull(Box::new(req.image)));
                }
                Err(TrySendError::Full(_)) => unreachable!("only requests use try_send"),
                Err(TrySendError::Disconnected(_)) => return Err(SubmitError::Stopped),
            },
        }
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        // Per-model live window: offered load and backlog, sampled by the
        // autoscaler (and any other saturation-aware router) while the
        // server runs.
        let live = self.shared.registry.live(model);
        live.submitted.fetch_add(1, Ordering::Relaxed);
        live.in_flight.fetch_add(1, Ordering::Relaxed);
        Ok(Ticket { id, rx })
    }

    /// Total backlog across every model: requests admitted but not yet
    /// answered (queued, batching, or running). The saturation signal a
    /// cluster router reads before spilling traffic to another backend.
    pub fn queue_depth(&self) -> u64 {
        let registry = &self.shared.registry;
        (0..registry.len())
            .map(|m| registry.live(m).in_flight.load(Ordering::Relaxed))
            .sum()
    }
}

struct Request {
    id: u64,
    model: usize,
    priority: Priority,
    deadline: Option<Duration>,
    image: Tensor3<i8>,
    submitted_at: Instant,
    reply: SyncSender<Result<Response, Dropped>>,
}

enum Msg {
    Request(Request),
    /// Wake the scheduling loop so it drains the control channel. Carries
    /// no data itself — the actual command travels on the control channel,
    /// which jumps the request FIFO (see [`Control`]).
    Nudge,
    Shutdown,
}

/// Out-of-band commands to the batcher. These ride a dedicated unbounded
/// channel rather than the request queue, because a control action must
/// land *while* the pool is saturated — exactly when the request FIFO is
/// deepest. The batcher drains this channel at the top of every scheduling
/// iteration and inside every dispatch stall, so a resize takes effect
/// within one retry beat even under a full backlog.
enum Control {
    /// Grow or shrink one model's replica pool to `replicas` workers.
    /// Handled by the batcher (the sole owner of pool handles), ack'd with
    /// `(old_size, new_size)` once the pool has the new shape.
    Resize { model: usize, replicas: usize, ack: SyncSender<(usize, usize)> },
}

struct Batch {
    /// Server-wide batch sequence number (surfaces as
    /// [`RequestStats::batch_id`]).
    id: u64,
    priority: Priority,
    /// The weight snapshot the whole batch runs on — sampled once at
    /// flush, so a concurrent publish can never split a batch across
    /// parameter versions.
    artifact: Arc<ModelArtifact>,
    requests: Vec<Request>,
}

/// One live replica worker, as the batcher sees it: its batch queue and
/// its dispatch-side in-flight image counter.
struct ReplicaSlot {
    tx: SyncSender<Batch>,
    in_flight: Arc<AtomicU64>,
}

/// Batcher-side view of one model's replica pool. Pools are resizable at
/// runtime ([`Server::resize_pool`]): growing spawns fresh workers,
/// shrinking drops a slot's sender so that worker drains its queue and
/// exits.
struct PoolHandle {
    slots: Vec<ReplicaSlot>,
    /// Round-robin cursor (per pool, so shard order is reproducible per
    /// model regardless of other models' traffic).
    seq: usize,
    /// Synthetic per-batch busy time replicas of this pool inject
    /// ([`ModelOptions::synthetic_delay`]); replicas added by a resize
    /// inherit it, so scaling experiments stay apples-to-apples.
    delay: Duration,
}

#[derive(Default)]
struct Lane {
    pending: Vec<Request>,
    first_at: Option<Instant>,
}

struct BatcherStats {
    batches: u64,
    occupancy_sum: u64,
    /// Shed counts per model per class index.
    shed: Vec<[u64; 2]>,
}

struct BatcherKnobs {
    max_batch: usize,
    flush_deadline: Duration,
    interactive_flush_deadline: Duration,
    dispatch: DispatchPolicy,
}

impl BatcherKnobs {
    fn deadline_of(&self, priority: Priority) -> Duration {
        match priority {
            Priority::Interactive => self.interactive_flush_deadline,
            Priority::Batch => self.flush_deadline,
        }
    }
}

/// How long a stalled dispatch sleeps between retries while every replica
/// of the target pool is busy. Each retry beat re-drains the control
/// channel, so this also bounds resize latency under saturation.
const DISPATCH_RETRY: Duration = Duration::from_millis(1);

/// Apply every queued control command. Called at the top of each batcher
/// iteration and between dispatch retries, so pool reshapes land promptly
/// regardless of how deep the request FIFO is.
fn apply_control(
    control: &Receiver<Control>,
    pools: &mut [PoolHandle],
    workers: &mut Vec<JoinHandle<WorkerOutput>>,
    shared: &Arc<Shared>,
) {
    while let Ok(Control::Resize { model, replicas, ack }) = control.try_recv() {
        let old = pools[model].slots.len();
        while pools[model].slots.len() < replicas {
            let delay = pools[model].delay;
            let (slot, handle) = spawn_worker(shared, model, delay);
            pools[model].slots.push(slot);
            workers.push(handle);
        }
        // Shrink: dropping the slot's sender lets the worker drain any
        // batch already queued to it, answer those requests, and exit;
        // its join handle stays with the batcher for shutdown, so its
        // counters still reach the final report.
        while pools[model].slots.len() > replicas {
            pools[model].slots.pop();
        }
        shared.registry.set_replicas(model, replicas);
        let _ = ack.send((old, replicas));
    }
}

/// Close `lane` into a batch: shed deadline-expired requests, pin the
/// model's current weight snapshot, and dispatch to a pool replica.
#[allow(clippy::too_many_arguments)] // the batcher's whole working set
fn flush_lane(
    lane: &mut Lane,
    pools: &mut [PoolHandle],
    model: usize,
    priority: Priority,
    control: &Receiver<Control>,
    workers: &mut Vec<JoinHandle<WorkerOutput>>,
    shared: &Arc<Shared>,
    dispatch: DispatchPolicy,
    stats: &mut BatcherStats,
) {
    let registry = &shared.registry;
    lane.first_at = None;
    if lane.pending.is_empty() {
        return;
    }
    let requests = std::mem::take(&mut lane.pending);
    // Dispatch-time deadline check: a request that already blew its
    // latency budget is answered `Dropped::Deadline` now — running it
    // would waste a pipeline slot on an answer nobody is waiting for.
    let now = Instant::now();
    let mut kept = Vec::with_capacity(requests.len());
    for req in requests {
        match req.deadline {
            Some(budget) if now.duration_since(req.submitted_at) > budget => {
                stats.shed[model][priority.index()] += 1;
                let live = registry.live(model);
                live.shed.fetch_add(1, Ordering::Relaxed);
                live.in_flight.fetch_sub(1, Ordering::Relaxed);
                let _ = req.reply.send(Err(Dropped::Deadline));
            }
            _ => kept.push(req),
        }
    }
    if kept.is_empty() {
        return;
    }
    // Round-robin assigns a sequence slot once per batch (reproducible
    // shard order); least-loaded re-picks on every retry, so a replica
    // added by a mid-stall resize is targeted immediately.
    let assigned = match dispatch {
        DispatchPolicy::RoundRobin => {
            let s = pools[model].seq;
            pools[model].seq += 1;
            Some(s)
        }
        DispatchPolicy::LeastLoaded => None,
    };
    let id = stats.batches;
    stats.batches += 1;
    stats.occupancy_sum += kept.len() as u64;
    let images = kept.len() as u64;
    let artifact = registry.current(model);
    let mut batch = Batch { id, priority, artifact, requests: kept };
    loop {
        let pool = &pools[model];
        let target = match assigned {
            Some(s) => s % pool.slots.len(),
            // Fewest in-flight images wins, ties to the lowest id. The
            // loads move underneath us (workers decrement as batches
            // finish), but only the batcher increments, so the chosen
            // replica can only be less loaded than observed.
            None => pool
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(_, slot)| slot.in_flight.load(Ordering::Relaxed))
                .map(|(i, _)| i)
                .expect("at least one replica"),
        };
        match pools[model].slots[target].tx.try_send(batch) {
            Ok(()) => {
                pools[model].slots[target].in_flight.fetch_add(images, Ordering::Relaxed);
                return;
            }
            // Every replica busy and its batch slot occupied: backpressure
            // propagates through the batcher to the bounded submission
            // queue and ultimately to the admission edge. The stall stays
            // control-responsive, so a scale-up can land mid-stall — the
            // moment it is most needed — and the next retry targets the
            // fresh, empty replica.
            Err(TrySendError::Full(b)) => {
                batch = b;
                apply_control(control, pools, workers, shared);
                thread::sleep(DISPATCH_RETRY);
            }
            Err(TrySendError::Disconnected(_)) => {
                panic!("model {model} replica {target} hung up before shutdown")
            }
        }
    }
}

/// Flush every lane whose class deadline has expired — interactive lanes
/// first, so latency traffic is dispatched ahead of throughput traffic at
/// every scheduling decision.
fn flush_expired(
    lanes: &mut [[Lane; 2]],
    pools: &mut [PoolHandle],
    control: &Receiver<Control>,
    workers: &mut Vec<JoinHandle<WorkerOutput>>,
    shared: &Arc<Shared>,
    knobs: &BatcherKnobs,
    stats: &mut BatcherStats,
) {
    let now = Instant::now();
    for priority in Priority::ALL {
        for (model, pair) in lanes.iter_mut().enumerate() {
            let lane = &mut pair[priority.index()];
            let expired = lane
                .first_at
                .is_some_and(|t0| now.duration_since(t0) >= knobs.deadline_of(priority));
            if expired {
                flush_lane(
                    lane,
                    pools,
                    model,
                    priority,
                    control,
                    workers,
                    shared,
                    knobs.dispatch,
                    stats,
                );
            }
        }
    }
}

/// Assemble requests into per-(model, class) batches and dispatch them.
///
/// The batcher is also the pool supervisor: it owns every replica slot and
/// every worker join handle (including workers retired by a shrink), so
/// [`Control::Resize`] needs no lock around pool shape — it is applied on
/// the scheduling loop, from a dedicated channel that jumps the request
/// FIFO (drained each iteration and inside dispatch stalls). Returns its
/// stats plus the handles of every worker it ever supervised, for the
/// shutdown join.
fn run_batcher(
    rx: Receiver<Msg>,
    control: Receiver<Control>,
    mut pools: Vec<PoolHandle>,
    mut workers: Vec<JoinHandle<WorkerOutput>>,
    shared: Arc<Shared>,
    knobs: BatcherKnobs,
) -> (BatcherStats, Vec<JoinHandle<WorkerOutput>>) {
    let models = pools.len();
    let mut stats =
        BatcherStats { batches: 0, occupancy_sum: 0, shed: vec![[0; 2]; models] };
    let mut lanes: Vec<[Lane; 2]> = (0..models).map(|_| Default::default()).collect();
    loop {
        apply_control(&control, &mut pools, &mut workers, &shared);
        // Wake at the earliest lane deadline: each lane's clock starts at
        // its *own* first queued request and runs against its *own* class
        // deadline (a partial interactive batch flushes on time even while
        // a batch-class lane is still filling).
        let mut wake: Option<Instant> = None;
        for pair in &lanes {
            for priority in Priority::ALL {
                if let Some(t0) = pair[priority.index()].first_at {
                    let at = t0 + knobs.deadline_of(priority);
                    wake = Some(wake.map_or(at, |w| w.min(at)));
                }
            }
        }
        let msg = match wake {
            None => rx.recv().map_err(|_| RecvTimeoutError::Disconnected),
            Some(at) => rx.recv_timeout(at.saturating_duration_since(Instant::now())),
        };
        match msg {
            Ok(Msg::Request(req)) => {
                let (model, priority) = (req.model, req.priority);
                let lane = &mut lanes[model][priority.index()];
                if lane.pending.is_empty() {
                    lane.first_at = Some(Instant::now());
                }
                lane.pending.push(req);
                if lane.pending.len() >= knobs.max_batch {
                    let lane = &mut lanes[model][priority.index()];
                    flush_lane(
                        lane,
                        &mut pools,
                        model,
                        priority,
                        &control,
                        &mut workers,
                        &shared,
                        knobs.dispatch,
                        &mut stats,
                    );
                }
                // A steady request stream keeps `recv_timeout` from ever
                // timing out, so expired lanes are also checked after
                // every message — without this, flood traffic in one lane
                // would starve the deadline of every other lane.
                flush_expired(
                    &mut lanes,
                    &mut pools,
                    &control,
                    &mut workers,
                    &shared,
                    &knobs,
                    &mut stats,
                );
            }
            Ok(Msg::Nudge) => {
                // A control command was just posted; apply it now rather
                // than waiting for the next natural wake-up.
                apply_control(&control, &mut pools, &mut workers, &shared);
                flush_expired(
                    &mut lanes,
                    &mut pools,
                    &control,
                    &mut workers,
                    &shared,
                    &knobs,
                    &mut stats,
                );
            }
            Err(RecvTimeoutError::Timeout) => {
                flush_expired(
                    &mut lanes,
                    &mut pools,
                    &control,
                    &mut workers,
                    &shared,
                    &knobs,
                    &mut stats,
                );
            }
            Ok(Msg::Shutdown) | Err(RecvTimeoutError::Disconnected) => {
                apply_control(&control, &mut pools, &mut workers, &shared);
                for priority in Priority::ALL {
                    for (model, pair) in lanes.iter_mut().enumerate() {
                        let lane = &mut pair[priority.index()];
                        flush_lane(
                            lane,
                            &mut pools,
                            model,
                            priority,
                            &control,
                            &mut workers,
                            &shared,
                            knobs.dispatch,
                            &mut stats,
                        );
                    }
                }
                return (stats, workers);
            }
        }
    }
}

struct Sample {
    priority: Priority,
    queue_wait: Duration,
    latency: Duration,
}

struct WorkerOutput {
    model_idx: usize,
    stats: ReplicaStats,
    samples: Vec<Sample>,
}

/// Spawn one replica worker for `model_idx`, wired to a fresh depth-1
/// batch queue and a fresh in-flight counter. Used both at server start
/// and by the batcher when a resize grows a pool.
fn spawn_worker(
    shared: &Arc<Shared>,
    model_idx: usize,
    synthetic_delay: Duration,
) -> (ReplicaSlot, JoinHandle<WorkerOutput>) {
    let name = Arc::clone(&shared.registry.entry(model_idx).name);
    let global_id = shared.next_replica.fetch_add(1, Ordering::Relaxed) as usize;
    // Depth 1: one batch may queue while the previous one runs, so a
    // replica never idles between back-to-back batches, but the batcher
    // cannot run arbitrarily far ahead of slow replicas.
    let (tx, rx) = sync_channel::<Batch>(1);
    let in_flight = Arc::new(AtomicU64::new(0));
    let load = Arc::clone(&in_flight);
    let shared = Arc::clone(shared);
    let handle = std::thread::spawn(move || {
        run_worker(shared, model_idx, name, global_id, rx, load, synthetic_delay)
    });
    (ReplicaSlot { tx, in_flight }, handle)
}

/// Execute batches on one pool replica until its queue disconnects
/// (drain). `in_flight` is this replica's dispatch-side image count:
/// decremented once a batch is fully answered, so the batcher's
/// least-loaded view covers queued *and* running work. `synthetic_delay`
/// injects extra busy time per batch (test/bench knob modeling a slow
/// card).
fn run_worker(
    shared: Arc<Shared>,
    model_idx: usize,
    model: Arc<str>,
    global_id: usize,
    rx: Receiver<Batch>,
    in_flight: Arc<AtomicU64>,
    synthetic_delay: Duration,
) -> WorkerOutput {
    let mut out = WorkerOutput {
        model_idx,
        stats: ReplicaStats {
            replica: global_id,
            model: model.to_string(),
            batches: 0,
            images: 0,
            busy: Duration::ZERO,
            cycles: 0,
        },
        samples: Vec::new(),
    };
    while let Ok(batch) = rx.recv() {
        let Batch { id: batch_id, priority, artifact, requests } = batch;
        let started = Instant::now();
        let images: Vec<Tensor3<i8>> = requests.iter().map(|r| r.image.clone()).collect();
        // A RunError here (deadlock/timeout) means the compiled pipeline
        // itself is broken — a programming error, not a load condition —
        // so it propagates as a panic with the executor's diagnostics.
        let sim = artifact.run_batch(&images).unwrap_or_else(|e| {
            panic!("model {model} replica {global_id}: batch of {} failed: {e}", images.len())
        });
        if !synthetic_delay.is_zero() {
            std::thread::sleep(synthetic_delay);
        }
        let busy = started.elapsed();
        out.stats.batches += 1;
        out.stats.images += requests.len() as u64;
        out.stats.busy += busy;
        out.stats.cycles += sim.cycles();
        let n = requests.len();
        let live = shared.registry.live(model_idx);
        for (i, req) in requests.into_iter().enumerate() {
            let queue_wait = started.saturating_duration_since(req.submitted_at);
            let latency = req.submitted_at.elapsed();
            out.samples.push(Sample { priority, queue_wait, latency });
            // Feed the model's live window: completions, backlog, and the
            // interactive-latency samples the autoscaler's control law
            // reads between reports.
            live.completed.fetch_add(1, Ordering::Relaxed);
            live.in_flight.fetch_sub(1, Ordering::Relaxed);
            if priority == Priority::Interactive {
                live.push_interactive(latency);
            }
            let response = Response {
                id: req.id,
                model: model.to_string(),
                logits: sim.logits[i].clone(),
                stats: RequestStats {
                    queue_wait,
                    latency,
                    batch_size: n,
                    batch_id,
                    replica: global_id,
                    priority,
                    weight_version: artifact.version(),
                    cycles: sim.cycles(),
                },
            };
            // The ticket may have been dropped; the request still counts
            // as completed (the work was done).
            let _ = req.reply.send(Ok(response));
        }
        in_flight.fetch_sub(n as u64, Ordering::Relaxed);
    }
    out
}

/// Per-model overrides for [`ServerBuilder::model_with`]; unset fields
/// fall back to the server-wide [`ServerConfig`].
#[derive(Clone, Debug, Default)]
pub struct ModelOptions {
    /// Pool size for this model (defaults to `config.replicas`). Size
    /// pools against each model's offered load, not one global knob.
    pub replicas: Option<usize>,
    /// Compile options for this model (defaults to `config.compile`).
    pub compile: Option<CompileOptions>,
    /// Test/bench knob: uniform extra busy time per batch on *every*
    /// replica of this pool — including replicas added later by
    /// [`Server::resize_pool`], which the per-slot
    /// [`ServerConfig::synthetic_replica_delay`] vector cannot describe.
    /// Models a card whose service time dominates host compute, so
    /// autoscaling behaviour is reproducible on any host.
    pub synthetic_delay: Option<Duration>,
}

impl ModelOptions {
    /// No overrides.
    pub fn new() -> Self {
        Self::default()
    }

    /// Override this model's pool size.
    pub fn replicas(mut self, replicas: usize) -> Self {
        self.replicas = Some(replicas);
        self
    }

    /// Override this model's compile options.
    pub fn compile(mut self, compile: CompileOptions) -> Self {
        self.compile = Some(compile);
        self
    }

    /// Uniform synthetic per-batch busy time for this pool's replicas.
    pub fn synthetic_delay(mut self, delay: Duration) -> Self {
        self.synthetic_delay = Some(delay);
        self
    }
}

/// Registers models against a [`ServerConfig`] and starts the runtime.
pub struct ServerBuilder {
    config: ServerConfig,
    models: Vec<(String, Network, ModelOptions)>,
}

impl ServerBuilder {
    /// Replace the server-wide configuration (defaults to
    /// [`ServerConfig::default`]).
    pub fn config(mut self, config: ServerConfig) -> Self {
        self.config = config;
        self
    }

    /// Register `net` under `name` with the server-wide pool defaults.
    pub fn model(self, name: impl Into<String>, net: &Network) -> Self {
        self.model_with(name, net, ModelOptions::default())
    }

    /// Register `net` under `name` with per-model overrides.
    pub fn model_with(
        mut self,
        name: impl Into<String>,
        net: &Network,
        options: ModelOptions,
    ) -> Self {
        self.models.push((name.into(), net.clone(), options));
        self
    }

    /// Validate, compile every registered model (through an
    /// [`ArtifactCache`] keyed by options, so pools share parameter
    /// snapshots), spawn the batcher and every pool's workers, and return
    /// the running [`Server`].
    pub fn start(self) -> Result<Server, ConfigError> {
        let config = self.config;
        config.validate()?;
        if self.models.is_empty() {
            return Err(ConfigError::NoModels);
        }
        for (i, (name, _, _)) in self.models.iter().enumerate() {
            if self.models[..i].iter().any(|(n, _, _)| n == name) {
                return Err(ConfigError::DuplicateModel(name.clone()));
            }
        }

        let mut cache = ArtifactCache::new();
        let mut entries = Vec::with_capacity(self.models.len());
        let mut pool_specs = Vec::with_capacity(self.models.len());
        for (name, net, opts) in &self.models {
            let replicas = opts.replicas.unwrap_or(config.replicas);
            if replicas == 0 {
                return Err(ConfigError::ZeroReplicas);
            }
            let compile = opts.compile.as_ref().unwrap_or(&config.compile);
            let artifact = cache.get_or_compile(name, net, compile);
            entries.push(registry::entry(name.clone(), artifact, replicas));
            pool_specs.push((replicas, opts.synthetic_delay));
        }
        let shared = Arc::new(Shared {
            registry: ModelRegistry::new(entries),
            next_id: AtomicU64::new(0),
            next_replica: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            stopped: AtomicBool::new(false),
        });

        let mut pools = Vec::with_capacity(pool_specs.len());
        let mut workers = Vec::new();
        for (model_idx, &(replicas, model_delay)) in pool_specs.iter().enumerate() {
            let mut slots = Vec::with_capacity(replicas);
            for slot in 0..replicas {
                // Per-slot delays come from the legacy config vector
                // unless the model sets a uniform pool-wide delay.
                let delay = model_delay.unwrap_or_else(|| {
                    config.synthetic_replica_delay.get(slot).copied().unwrap_or(Duration::ZERO)
                });
                let (replica_slot, handle) = spawn_worker(&shared, model_idx, delay);
                slots.push(replica_slot);
                workers.push(handle);
            }
            pools.push(PoolHandle {
                slots,
                seq: 0,
                delay: model_delay.unwrap_or(Duration::ZERO),
            });
        }

        let (sub_tx, sub_rx) = sync_channel::<Msg>(config.queue_depth);
        let (control_tx, control_rx) = channel::<Control>();
        let knobs = BatcherKnobs {
            max_batch: config.max_batch,
            flush_deadline: config.flush_deadline,
            interactive_flush_deadline: config.interactive_flush_deadline,
            dispatch: config.dispatch,
        };
        let batcher_shared = Arc::clone(&shared);
        let batcher = std::thread::spawn(move || {
            run_batcher(sub_rx, control_rx, pools, workers, batcher_shared, knobs)
        });

        Ok(Server {
            shared,
            tx: sub_tx,
            control_tx,
            admission: config.admission,
            batcher,
            started: Instant::now(),
        })
    }
}

/// A running multi-model serving instance.
///
/// Obtain one through [`Server::builder`], submit through [`Server::client`]
/// handles, swap weights with [`Server::publish_weights`], and finish with
/// [`Server::shutdown`], which drains and returns the [`ServerReport`].
pub struct Server {
    shared: Arc<Shared>,
    tx: SyncSender<Msg>,
    /// Out-of-band command lane to the batcher ([`Control`]); commands on
    /// it jump the request FIFO.
    control_tx: Sender<Control>,
    admission: AdmissionPolicy,
    batcher: JoinHandle<(BatcherStats, Vec<JoinHandle<WorkerOutput>>)>,
    started: Instant,
}

impl Server {
    /// Start describing a server: `Server::builder().model(...).start()`.
    pub fn builder() -> ServerBuilder {
        ServerBuilder { config: ServerConfig::default(), models: Vec::new() }
    }

    /// A new submission handle. Clients are independent and cheap; create
    /// one per traffic source.
    pub fn client(&self) -> Client {
        Client {
            tx: self.tx.clone(),
            admission: self.admission,
            shared: Arc::clone(&self.shared),
        }
    }

    /// The model registry (names, current weight versions).
    pub fn registry(&self) -> &ModelRegistry {
        &self.shared.registry
    }

    /// Registered model names, in registration order.
    pub fn models(&self) -> Vec<String> {
        self.shared.registry.names()
    }

    /// Publish new parameters for `model` — the hot-swap path. Batches
    /// already dispatched finish on the old weights; every batch flushed
    /// after this call runs bit-identically on the new ones. Returns the
    /// new weight version.
    pub fn publish_weights(&self, model: &str, net: Network) -> Result<u64, PublishError> {
        self.shared.registry.publish(model, net)
    }

    /// Resize `model`'s replica pool to `replicas` workers — the hook the
    /// cluster autoscaler drives. Growing spawns fresh workers (sharing
    /// the pool's current artifact through the registry); shrinking
    /// retires the highest-numbered slots, each retired worker draining
    /// any batch already queued to it before exiting. Returns
    /// `(old_size, new_size)` once the pool has the new shape.
    pub fn resize_pool(&self, model: &str, replicas: usize) -> Result<(usize, usize), ResizeError> {
        if replicas == 0 {
            return Err(ResizeError::ZeroReplicas);
        }
        let idx = self
            .shared
            .registry
            .resolve(model)
            .ok_or_else(|| ResizeError::UnknownModel(model.to_string()))?;
        let (ack, rx) = sync_channel(1);
        self.control_tx
            .send(Control::Resize { model: idx, replicas, ack })
            .map_err(|_| ResizeError::Stopped)?;
        // Wake the batcher if it is parked on an empty request queue. A
        // full queue is fine to skip: a busy batcher re-drains the control
        // channel every scheduling iteration and every dispatch retry.
        let _ = self.tx.try_send(Msg::Nudge);
        rx.recv().map_err(|_| ResizeError::Stopped)
    }

    /// A live load sample for `model`: cumulative offered/completed
    /// counts, current backlog, pool size, and the interactive-latency
    /// summary of the window since the previous call (the call drains the
    /// sample buffer). This is the signal the replica autoscaler's control
    /// loop runs on — available while the server runs, unlike the
    /// [`ServerReport`] which only exists after shutdown.
    pub fn load_window(&self, model: &str) -> Option<LoadWindow> {
        let registry = &self.shared.registry;
        let idx = registry.resolve(model)?;
        let live = registry.live(idx);
        let samples = live.take_interactive();
        Some(LoadWindow {
            model: model.to_string(),
            replicas: registry.replicas(idx),
            submitted: live.submitted.load(Ordering::Relaxed),
            completed: live.completed.load(Ordering::Relaxed),
            shed: live.shed.load(Ordering::Relaxed),
            in_flight: live.in_flight.load(Ordering::Relaxed),
            interactive_samples: samples.len(),
            interactive: LatencySummary::from_samples("interactive", samples),
        })
    }

    /// Stop admission, drain every in-flight batch, join all threads, and
    /// return the aggregate report.
    ///
    /// Requests admitted before the call are answered (completed or shed);
    /// `submit` calls racing the shutdown may instead resolve their
    /// tickets to [`Dropped::Stopped`].
    pub fn shutdown(self) -> ServerReport {
        self.shared.stopped.store(true, Ordering::Release);
        // FIFO marker: everything already in the queue is processed first.
        let _ = self.tx.send(Msg::Shutdown);
        drop(self.tx);
        let (batcher_stats, workers) = self.batcher.join().expect("batcher thread panicked");
        let outputs: Vec<WorkerOutput> = workers
            .into_iter()
            .map(|h| h.join().expect("replica worker panicked"))
            .collect();
        let wall = self.started.elapsed();
        build_report(&self.shared, batcher_stats, outputs, wall)
    }
}

/// Why a [`Server::resize_pool`] call was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResizeError {
    /// No model of that name is registered.
    UnknownModel(String),
    /// Pools need at least one replica; drain a model by removing its
    /// traffic, not by resizing to zero.
    ZeroReplicas,
    /// The server tore down before acknowledging the resize.
    Stopped,
}

impl fmt::Display for ResizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResizeError::UnknownModel(name) => {
                write!(f, "no model named {name:?} is registered")
            }
            ResizeError::ZeroReplicas => write!(f, "pools need at least one replica"),
            ResizeError::Stopped => write!(f, "server stopped before acknowledging resize"),
        }
    }
}

impl std::error::Error for ResizeError {}

fn build_report(
    shared: &Shared,
    batcher: BatcherStats,
    outputs: Vec<WorkerOutput>,
    wall: Duration,
) -> ServerReport {
    let registry = &shared.registry;
    let models = registry.len();

    let mut queue_waits = Vec::new();
    let mut latencies = Vec::new();
    let mut per_replica = Vec::with_capacity(outputs.len());
    let mut completed = 0u64;
    let mut class_completed = vec![[0u64; 2]; models];
    let mut class_latencies: Vec<[Vec<Duration>; 2]> =
        (0..models).map(|_| Default::default()).collect();
    for out in outputs {
        completed += out.stats.images;
        for s in out.samples {
            queue_waits.push(s.queue_wait);
            latencies.push(s.latency);
            class_completed[out.model_idx][s.priority.index()] += 1;
            class_latencies[out.model_idx][s.priority.index()].push(s.latency);
        }
        per_replica.push(out.stats);
    }
    per_replica.sort_by_key(|r| r.replica);

    let mut per_model = Vec::with_capacity(models);
    for m in 0..models {
        let entry = registry.entry(m);
        let mut model_latencies = Vec::new();
        let mut per_priority = Vec::with_capacity(2);
        let (mut m_completed, mut m_shed) = (0u64, 0u64);
        for priority in Priority::ALL {
            let i = priority.index();
            m_completed += class_completed[m][i];
            m_shed += batcher.shed[m][i];
            model_latencies.extend_from_slice(&class_latencies[m][i]);
            per_priority.push(ClassStats {
                priority,
                completed: class_completed[m][i],
                shed: batcher.shed[m][i],
                latency: LatencySummary::from_samples("latency", class_latencies[m][i].clone()),
            });
        }
        per_model.push(ModelStats {
            model: entry.name.to_string(),
            replicas: registry.replicas(m),
            completed: m_completed,
            shed: m_shed,
            weight_publishes: registry.publishes(m),
            latency: LatencySummary::from_samples("latency", model_latencies),
            per_priority,
        });
    }

    let per_priority = Priority::ALL
        .iter()
        .map(|&priority| {
            let i = priority.index();
            let mut samples = Vec::new();
            for lanes in &class_latencies {
                samples.extend_from_slice(&lanes[i]);
            }
            ClassStats {
                priority,
                completed: (0..models).map(|m| class_completed[m][i]).sum(),
                shed: (0..models).map(|m| batcher.shed[m][i]).sum(),
                latency: LatencySummary::from_samples("latency", samples),
            }
        })
        .collect();

    ServerReport {
        // Final pool sizes (a resize changes these); retired workers still
        // appear in `per_replica` with the counters they accumulated.
        replicas: (0..models).map(|m| registry.replicas(m)).sum(),
        submitted: shared.submitted.load(Ordering::Relaxed),
        completed,
        rejected: shared.rejected.load(Ordering::Relaxed),
        shed: batcher.shed.iter().map(|s| s[0] + s[1]).sum(),
        batches: batcher.batches,
        wall,
        mean_batch_occupancy: if batcher.batches > 0 {
            batcher.occupancy_sum as f64 / batcher.batches as f64
        } else {
            0.0
        },
        queue_wait: LatencySummary::from_samples("queue_wait", queue_waits),
        latency: LatencySummary::from_samples("latency", latencies),
        per_replica,
        per_model,
        per_priority,
    }
}

/// Run a single-model serving session — the legacy closure entrypoint,
/// now a thin shim over [`Server`]: it registers `net` as
/// [`DEFAULT_MODEL`], hands a [`Client`] to `body`, and shuts the server
/// down (draining every in-flight batch) after `body` returns.
///
/// Returns `body`'s result and the aggregate [`ServerReport`].
///
/// # Panics
/// Panics when `config` is invalid — new code should use
/// [`Server::builder`] with [`ServerConfig::builder`], which surface
/// [`ConfigError`] instead.
#[deprecated(
    note = "use Server::builder().model(..).start() and shutdown() — see DESIGN.md §7"
)]
pub fn serve<R>(
    net: &Network,
    config: &ServerConfig,
    body: impl FnOnce(&Client) -> R,
) -> (R, ServerReport) {
    let server = Server::builder()
        .config(config.clone())
        .model(DEFAULT_MODEL, net)
        .start()
        .unwrap_or_else(|e| panic!("invalid server configuration: {e}"));
    let client = server.client();
    let result = body(&client);
    drop(client);
    (result, server.shutdown())
}
