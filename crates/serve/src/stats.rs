//! Per-request and aggregate serving statistics.

use crate::config::Priority;
use qnn_testkit::bench::Measurement;
use std::time::Duration;

/// Timing and placement breakdown attached to every completed request.
#[derive(Clone, Debug)]
pub struct RequestStats {
    /// Submission → the batch containing this request started executing.
    pub queue_wait: Duration,
    /// Submission → response produced (queue wait + service time).
    pub latency: Duration,
    /// Number of images in the batch this request rode in.
    pub batch_size: usize,
    /// Server-wide batch sequence number of that batch. All requests
    /// sharing a `batch_id` ran on the same weight snapshot — the
    /// observable handle for the swap-atomicity guarantee.
    pub batch_id: u64,
    /// Global replica index (across every model's pool) that executed the
    /// batch.
    pub replica: usize,
    /// Scheduling class the request was dispatched under.
    pub priority: Priority,
    /// Weight version of the artifact the batch ran on (0 until the
    /// model's first publish).
    pub weight_version: u64,
    /// Simulated fabric cycles of the batch run (bit-identical across
    /// runs; the wall-clock fields above are not).
    pub cycles: u64,
}

/// Per-replica aggregate counters, returned by each worker at shutdown.
#[derive(Clone, Debug)]
pub struct ReplicaStats {
    /// Global replica index (unique across pools).
    pub replica: usize,
    /// The model this replica serves.
    pub model: String,
    /// Batches executed.
    pub batches: u64,
    /// Images executed.
    pub images: u64,
    /// Wall time spent inside pipeline execution.
    pub busy: Duration,
    /// Simulated fabric cycles executed, summed over batches.
    pub cycles: u64,
}

/// p50/p95/max over a set of duration samples (via `qnn-testkit`'s
/// median/p95 bench helpers, so serving reports and bench output agree on
/// percentile arithmetic).
#[derive(Clone, Copy, Debug)]
pub struct LatencySummary {
    /// Median.
    pub p50: Duration,
    /// 95th percentile (nearest-rank).
    pub p95: Duration,
    /// Worst observed sample.
    pub max: Duration,
}

impl LatencySummary {
    /// Summarize `samples`; `None` when no requests completed.
    pub fn from_samples(name: &str, mut samples: Vec<Duration>) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        samples.sort_unstable();
        let max = *samples.last().expect("non-empty");
        let m = Measurement { name: name.to_string(), sorted: samples };
        Some(Self { p50: m.median(), p95: m.p95(), max })
    }

    fn render(this: &Option<Self>) -> String {
        match this {
            Some(l) => format!(
                "p50 {:.3} ms  p95 {:.3} ms  max {:.3} ms",
                l.p50.as_secs_f64() * 1e3,
                l.p95.as_secs_f64() * 1e3,
                l.max.as_secs_f64() * 1e3
            ),
            None => "no completed requests".to_string(),
        }
    }
}

/// One live load sample for a model, returned by
/// [`crate::Server::load_window`] *while the server runs* — the signal the
/// replica autoscaler's control loop consumes. Counter fields are
/// cumulative (diff two windows for rates); the latency summary covers
/// only the interval since the previous window read.
#[derive(Clone, Debug)]
pub struct LoadWindow {
    /// Model name.
    pub model: String,
    /// Current replica pool size.
    pub replicas: usize,
    /// Requests admitted for this model since server start.
    pub submitted: u64,
    /// Requests answered with a response since server start.
    pub completed: u64,
    /// Requests shed at dispatch since server start.
    pub shed: u64,
    /// Current backlog: admitted but not yet answered or shed. The
    /// saturation signal — a backlog persistently above the pool's
    /// capacity means the model needs more replicas (or a router should
    /// spill its traffic).
    pub in_flight: u64,
    /// Interactive completions inside this window.
    pub interactive_samples: usize,
    /// Interactive end-to-end latency over this window (`None` when no
    /// interactive request completed in it).
    pub interactive: Option<LatencySummary>,
}

/// Completed/shed counts and latency for one scheduling class.
#[derive(Clone, Debug)]
pub struct ClassStats {
    /// The scheduling class.
    pub priority: Priority,
    /// Requests of this class answered with a response.
    pub completed: u64,
    /// Requests of this class shed at dispatch because their deadline had
    /// already passed ([`crate::Dropped::Deadline`]).
    pub shed: u64,
    /// End-to-end latency distribution of the class's completed requests.
    pub latency: Option<LatencySummary>,
}

/// Aggregate counters for one registered model.
#[derive(Clone, Debug)]
pub struct ModelStats {
    /// Model name.
    pub model: String,
    /// Pool size (replica workers).
    pub replicas: usize,
    /// Requests answered with a response.
    pub completed: u64,
    /// Requests shed at dispatch (deadline already passed).
    pub shed: u64,
    /// Weight versions published over the server's lifetime.
    pub weight_publishes: u64,
    /// End-to-end latency distribution of the model's completed requests.
    pub latency: Option<LatencySummary>,
    /// Per-class breakdown within this model (scheduling order).
    pub per_priority: Vec<ClassStats>,
}

/// Aggregate report returned by [`crate::Server::shutdown`] (and the
/// [`crate::serve`] shim) after the drain completes.
#[derive(Clone, Debug)]
pub struct ServerReport {
    /// Total replica workers across every model's pool.
    pub replicas: usize,
    /// Submission attempts that reached admission (admitted + rejected).
    pub submitted: u64,
    /// Requests that completed with a response.
    pub completed: u64,
    /// Requests refused at admission (only under
    /// [`crate::AdmissionPolicy::Reject`]).
    pub rejected: u64,
    /// Requests admitted but shed at dispatch because their deadline had
    /// already passed. The admission ledger partitions after a clean
    /// drain: `completed + rejected + shed == submitted`.
    pub shed: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Wall time from server start to the end of the drain.
    pub wall: Duration,
    /// Mean images per dispatched batch.
    pub mean_batch_occupancy: f64,
    /// Queue-wait distribution across completed requests.
    pub queue_wait: Option<LatencySummary>,
    /// End-to-end latency distribution across completed requests.
    pub latency: Option<LatencySummary>,
    /// Per-replica counters, sorted by global replica id.
    pub per_replica: Vec<ReplicaStats>,
    /// Per-model breakdown, in registration order.
    pub per_model: Vec<ModelStats>,
    /// Per-class breakdown across all models (scheduling order:
    /// interactive first).
    pub per_priority: Vec<ClassStats>,
}

impl ServerReport {
    /// Sustained throughput over the serving window.
    pub fn images_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 { self.completed as f64 / secs } else { 0.0 }
    }

    /// Throughput at the modeled device clock (`fclk_mhz`, e.g. the Maia
    /// fabric clock).
    ///
    /// Replicas model *independent DFE cards* running concurrently, so the
    /// modeled makespan is the **maximum** per-replica cycle load — unlike
    /// [`Self::images_per_sec`], whose wall clock serializes the replica
    /// workers when the host has fewer cores than replicas. This is the
    /// number that exhibits replica scaling regardless of host hardware,
    /// and it is bit-deterministic across runs for a fixed trace.
    pub fn device_images_per_sec(&self, fclk_mhz: f64) -> f64 {
        let makespan = self.per_replica.iter().map(|r| r.cycles).max().unwrap_or(0);
        if makespan == 0 {
            return 0.0;
        }
        self.completed as f64 * fclk_mhz * 1e6 / makespan as f64
    }

    /// The per-model breakdown for `model`, if it was registered.
    pub fn model(&self, model: &str) -> Option<&ModelStats> {
        self.per_model.iter().find(|m| m.model == model)
    }

    /// The cross-model breakdown for one scheduling class.
    pub fn class(&self, priority: Priority) -> Option<&ClassStats> {
        self.per_priority.iter().find(|c| c.priority == priority)
    }

    /// Render a human-readable multi-line summary.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "replicas {}  submitted {}  completed {}  rejected {}  shed {}  batches {} \
             (mean occupancy {:.2})",
            self.replicas,
            self.submitted,
            self.completed,
            self.rejected,
            self.shed,
            self.batches,
            self.mean_batch_occupancy,
        );
        let _ = writeln!(
            out,
            "wall {:.3} ms  throughput {:.1} images/sec",
            self.wall.as_secs_f64() * 1e3,
            self.images_per_sec(),
        );
        let _ = writeln!(out, "queue wait  {}", LatencySummary::render(&self.queue_wait));
        let _ = writeln!(out, "latency     {}", LatencySummary::render(&self.latency));
        for c in &self.per_priority {
            let _ = writeln!(
                out,
                "class {:<12} {} completed, {} shed, {}",
                c.priority,
                c.completed,
                c.shed,
                LatencySummary::render(&c.latency),
            );
        }
        for m in &self.per_model {
            let _ = writeln!(
                out,
                "model {:?}: {} replicas, {} completed, {} shed, {} weight publish(es), {}",
                m.model,
                m.replicas,
                m.completed,
                m.shed,
                m.weight_publishes,
                LatencySummary::render(&m.latency),
            );
        }
        for r in &self.per_replica {
            let _ = writeln!(
                out,
                "replica {} ({}): {} batches, {} images, busy {:.3} ms, {} cycles",
                r.replica,
                r.model,
                r.batches,
                r.images,
                r.busy.as_secs_f64() * 1e3,
                r.cycles,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_orders_percentiles() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_micros).collect();
        let s = LatencySummary::from_samples("t", samples).expect("non-empty");
        assert!(s.p50 <= s.p95 && s.p95 <= s.max);
        assert_eq!(s.max, Duration::from_micros(100));
        assert_eq!(s.p95, Duration::from_micros(95));
    }

    #[test]
    fn empty_samples_yield_none() {
        assert!(LatencySummary::from_samples("t", Vec::new()).is_none());
    }

    #[test]
    fn report_renders_and_computes_throughput() {
        let report = ServerReport {
            replicas: 2,
            submitted: 10,
            completed: 9,
            rejected: 0,
            shed: 1,
            batches: 5,
            wall: Duration::from_millis(100),
            mean_batch_occupancy: 2.0,
            queue_wait: None,
            latency: LatencySummary::from_samples(
                "l",
                vec![Duration::from_millis(1), Duration::from_millis(3)],
            ),
            per_replica: vec![],
            per_model: vec![ModelStats {
                model: "cnv".to_string(),
                replicas: 2,
                completed: 9,
                shed: 1,
                weight_publishes: 1,
                latency: None,
                per_priority: vec![],
            }],
            per_priority: vec![ClassStats {
                priority: Priority::Interactive,
                completed: 4,
                shed: 1,
                latency: None,
            }],
        };
        assert!((report.images_per_sec() - 90.0).abs() < 1e-9);
        let text = report.render();
        assert!(text.contains("replicas 2"), "render was: {text}");
        assert!(text.contains("images/sec"), "render was: {text}");
        assert!(text.contains("model \"cnv\""), "render was: {text}");
        assert!(text.contains("class interactive"), "render was: {text}");
        assert_eq!(report.model("cnv").map(|m| m.shed), Some(1));
        assert!(report.class(Priority::Batch).is_none());
    }
}
