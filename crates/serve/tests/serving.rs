//! Integration tests for the serving runtime: correctness of responses,
//! batching policy, admission control, drain-on-shutdown, and statistics
//! invariants. Everything uses the small `test_net` so the whole file runs
//! in tier-1 time.

// This suite predates the builder API and doubles as the deprecated
// `serve` shim's coverage until the shim is removed (DESIGN.md §7).
#![allow(deprecated)]

use qnn_compiler::{run_images, CompileOptions};
use qnn_nn::{models, Network};
use qnn_serve::{
    serve, AdmissionPolicy, ConfigError, DispatchPolicy, ModelOptions, Priority, ResizeError,
    Server, ServerConfig, SubmitError, SubmitOptions, Ticket,
};
use qnn_tensor::{Shape3, Tensor3};
use qnn_testkit::Rng;
use std::time::Duration;

fn image(side: usize, seed: u64) -> Tensor3<i8> {
    let mut rng = Rng::seed_from_u64(seed);
    Tensor3::from_fn(Shape3::square(side, 3), |_, _, _| rng.gen_range(-127i8..=127))
}

fn net() -> Network {
    Network::random(models::test_net(8, 4, 2), 42)
}

#[test]
fn responses_match_the_reference_interpreter() {
    let net = net();
    let imgs: Vec<_> = (0..6).map(|s| image(8, s)).collect();
    let config = ServerConfig { replicas: 2, max_batch: 3, ..ServerConfig::default() };
    let (responses, report) = serve(&net, &config, |client| {
        let tickets: Vec<Ticket> =
            imgs.iter().map(|i| client.submit(i.clone()).expect("admitted")).collect();
        tickets.into_iter().map(|t| t.wait().expect("answered")).collect::<Vec<_>>()
    });
    assert_eq!(report.completed, imgs.len() as u64);
    assert_eq!(report.rejected, 0);
    for (resp, img) in responses.iter().zip(&imgs) {
        assert_eq!(resp.logits, net.forward(img).logits, "request {}", resp.id);
    }
}

#[test]
fn responses_are_matched_to_their_requests_not_merely_in_order() {
    // Submit distinct images and redeem tickets in reverse order; each
    // ticket must still carry its own image's logits.
    let net = net();
    let imgs: Vec<_> = (0..5).map(|s| image(8, 100 + s)).collect();
    let config = ServerConfig { replicas: 3, max_batch: 2, ..ServerConfig::default() };
    let (responses, _) = serve(&net, &config, |client| {
        let tickets: Vec<Ticket> =
            imgs.iter().map(|i| client.submit(i.clone()).expect("admitted")).collect();
        let mut out: Vec<_> =
            tickets.into_iter().rev().map(|t| t.wait().expect("answered")).collect();
        out.reverse();
        out
    });
    for (resp, img) in responses.iter().zip(&imgs) {
        assert_eq!(resp.logits, net.forward(img).logits, "request {}", resp.id);
    }
}

#[test]
fn single_replica_serve_is_bit_identical_to_direct_execution() {
    // One replica, one batch covering the whole trace: the serve path must
    // produce the same logits as run_images on the same batch.
    let net = net();
    let imgs: Vec<_> = (0..4).map(|s| image(8, 50 + s)).collect();
    let direct = run_images(&net, &imgs, &CompileOptions::default()).expect("direct");
    let config = ServerConfig {
        replicas: 1,
        max_batch: imgs.len(),
        flush_deadline: Duration::from_secs(5),
        ..ServerConfig::default()
    };
    let (logits, report) = serve(&net, &config, |client| {
        let tickets: Vec<Ticket> =
            imgs.iter().map(|i| client.submit(i.clone()).expect("admitted")).collect();
        tickets
            .into_iter()
            .map(|t| t.wait().expect("answered").logits)
            .collect::<Vec<_>>()
    });
    assert_eq!(logits, direct.logits);
    assert_eq!(report.completed, imgs.len() as u64);
}

#[test]
fn shutdown_drains_every_admitted_request() {
    // Return from the body without waiting on any ticket: the drain must
    // still execute every admitted request, and the buffered responses
    // must be redeemable afterwards.
    let net = net();
    let imgs: Vec<_> = (0..5).map(|s| image(8, 200 + s)).collect();
    let config = ServerConfig { replicas: 2, max_batch: 2, ..ServerConfig::default() };
    let (tickets, report) = serve(&net, &config, |client| {
        imgs.iter()
            .map(|i| client.submit(i.clone()).expect("admitted"))
            .collect::<Vec<Ticket>>()
    });
    assert_eq!(report.completed, imgs.len() as u64, "drain lost requests");
    for (t, img) in tickets.into_iter().zip(&imgs) {
        let resp = t.wait().expect("response was buffered before shutdown");
        assert_eq!(resp.logits, net.forward(img).logits);
    }
}

#[test]
fn deadline_flushes_partial_batches() {
    // One request against a huge max_batch: only the deadline can flush
    // it. The request completing at all proves the deadline path works.
    let net = net();
    let config = ServerConfig {
        replicas: 1,
        max_batch: 64,
        flush_deadline: Duration::from_millis(1),
        ..ServerConfig::default()
    };
    let ((), report) = serve(&net, &config, |client| {
        let t = client.submit(image(8, 7)).expect("admitted");
        let resp = t.wait().expect("deadline must flush the batch");
        assert_eq!(resp.stats.batch_size, 1);
    });
    assert_eq!(report.completed, 1);
    assert_eq!(report.batches, 1);
}

#[test]
fn reject_admission_sheds_load_without_losing_accepted_requests() {
    // Tiny queue + reject policy + a fast submission burst: every attempt
    // either completes or is cleanly rejected with its image handed back.
    let net = net();
    let attempts = 24usize;
    let config = ServerConfig {
        replicas: 1,
        max_batch: 2,
        queue_depth: 1,
        admission: AdmissionPolicy::Reject,
        ..ServerConfig::default()
    };
    let (outcome, report) = serve(&net, &config, |client| {
        let mut tickets = Vec::new();
        let mut rejected = 0u64;
        for s in 0..attempts {
            match client.submit(image(8, 300 + s as u64)) {
                Ok(t) => tickets.push(t),
                Err(SubmitError::QueueFull(img)) => {
                    assert_eq!(img.shape(), Shape3::square(8, 3), "image handed back");
                    rejected += 1;
                }
                Err(e) => panic!("unexpected submit error: {e:?}"),
            }
        }
        let mut completed = 0u64;
        for t in tickets {
            t.wait().expect("accepted requests must complete");
            completed += 1;
        }
        (completed, rejected)
    });
    let (completed, rejected) = outcome;
    assert_eq!(completed + rejected, attempts as u64, "an attempt vanished");
    assert_eq!(report.completed, completed);
    assert_eq!(report.rejected, rejected);
    assert!(completed >= 1, "nothing was ever admitted");
}

#[test]
fn report_statistics_are_internally_consistent() {
    let net = net();
    let n = 8usize;
    let config = ServerConfig { replicas: 2, max_batch: 4, ..ServerConfig::default() };
    let ((), report) = serve(&net, &config, |client| {
        let tickets: Vec<Ticket> =
            (0..n).map(|s| client.submit(image(8, s as u64)).expect("admitted")).collect();
        for t in tickets {
            let resp = t.wait().expect("answered");
            assert!(resp.stats.batch_size >= 1 && resp.stats.batch_size <= 4);
            assert!(resp.stats.replica < 2);
            assert!(resp.stats.queue_wait <= resp.stats.latency);
            assert!(resp.stats.cycles > 0);
        }
    });
    assert_eq!(report.submitted, n as u64);
    assert_eq!(report.completed, n as u64);
    assert!(report.batches >= (n as u64).div_ceil(4), "too few batches");
    assert!(report.mean_batch_occupancy >= 1.0 && report.mean_batch_occupancy <= 4.0);
    assert!(report.images_per_sec() > 0.0);
    let lat = report.latency.expect("completed requests imply a summary");
    let qw = report.queue_wait.expect("completed requests imply a summary");
    assert!(lat.p50 <= lat.p95 && lat.p95 <= lat.max);
    assert!(qw.p50 <= lat.max, "queue wait cannot exceed worst latency");
    let per_replica_images: u64 = report.per_replica.iter().map(|r| r.images).sum();
    assert_eq!(per_replica_images, n as u64);
    assert!(!report.render().is_empty());
}

#[test]
fn work_is_sharded_across_replicas() {
    // With more batches than replicas and round-robin dispatch, every
    // replica must execute at least one batch (round-robin pinned: the
    // guarantee is policy-specific).
    let net = net();
    let n = 12usize;
    let config = ServerConfig {
        replicas: 3,
        max_batch: 1,
        flush_deadline: Duration::from_millis(1),
        dispatch: DispatchPolicy::RoundRobin,
        ..ServerConfig::default()
    };
    let ((), report) = serve(&net, &config, |client| {
        let tickets: Vec<Ticket> =
            (0..n).map(|s| client.submit(image(8, s as u64)).expect("admitted")).collect();
        for t in tickets {
            t.wait().expect("answered");
        }
    });
    assert_eq!(report.per_replica.len(), 3);
    for r in &report.per_replica {
        assert!(r.batches >= 1, "replica {} never ran a batch", r.replica);
        assert!(r.busy > Duration::ZERO);
    }
}

#[test]
fn least_loaded_dispatch_steers_work_away_from_a_slow_replica() {
    // Replica 0 is artificially slowed by 60 ms per batch; replica 1 runs
    // at full speed. Under least-loaded dispatch the slow replica's
    // in-flight count stays pinned high, so after the first few flushes
    // every batch goes to the drained fast replica. Round-robin would
    // split the 12 single-image batches 6/6; least-loaded must give the
    // fast replica strictly more (in practice ~3/9).
    let net = net();
    let n = 12usize;
    let config = ServerConfig {
        replicas: 2,
        max_batch: 1,
        flush_deadline: Duration::from_millis(1),
        synthetic_replica_delay: vec![Duration::from_millis(60), Duration::ZERO],
        ..ServerConfig::default()
    };
    assert_eq!(config.dispatch, DispatchPolicy::LeastLoaded, "the default policy");
    let ((), report) = serve(&net, &config, |client| {
        let tickets: Vec<Ticket> =
            (0..n).map(|s| client.submit(image(8, 500 + s as u64)).expect("admitted")).collect();
        for t in tickets {
            t.wait().expect("answered");
        }
    });
    assert_eq!(report.completed, n as u64);
    let slow = report.per_replica.iter().find(|r| r.replica == 0).expect("replica 0");
    let fast = report.per_replica.iter().find(|r| r.replica == 1).expect("replica 1");
    assert!(
        fast.batches > slow.batches,
        "least-loaded dispatch kept feeding the slow replica: slow {} vs fast {}",
        slow.batches,
        fast.batches
    );
}

#[test]
fn serving_works_over_a_partitioned_pipeline() {
    // Replicas of a two-device placement: the serve path must route
    // through the multi-DFE lockstep executor and stay bit-exact.
    let spec = models::test_net(8, 4, 2);
    let cut = spec.stages.len() / 2;
    let stage_device: Vec<usize> =
        (0..spec.stages.len()).map(|i| usize::from(i >= cut)).collect();
    let net = Network::random(spec, 9);
    let config = ServerConfig {
        replicas: 2,
        max_batch: 2,
        compile: CompileOptions { stage_device: Some(stage_device), ..CompileOptions::default() },
        ..ServerConfig::default()
    };
    let imgs: Vec<_> = (0..4).map(|s| image(8, 400 + s)).collect();
    let (responses, _) = serve(&net, &config, |client| {
        let tickets: Vec<Ticket> =
            imgs.iter().map(|i| client.submit(i.clone()).expect("admitted")).collect();
        tickets.into_iter().map(|t| t.wait().expect("answered")).collect::<Vec<_>>()
    });
    for (resp, img) in responses.iter().zip(&imgs) {
        assert_eq!(resp.logits, net.forward(img).logits);
    }
}

#[test]
fn concurrent_submitters_share_one_client() {
    // &Client is Sync: several scoped threads submit through it at once.
    let net = net();
    let net = &net;
    let per_thread = 3usize;
    let config = ServerConfig { replicas: 2, max_batch: 4, ..ServerConfig::default() };
    let (all, report) = serve(net, &config, |client| {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..3u64)
                .map(|t| {
                    s.spawn(move || {
                        (0..per_thread)
                            .map(|i| {
                                let img = image(8, 1000 * t + i as u64);
                                let expect = net.forward(&img).logits;
                                let got = client
                                    .submit(img)
                                    .expect("admitted")
                                    .wait()
                                    .expect("answered")
                                    .logits;
                                (got, expect)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("submitter"))
                .collect::<Vec<_>>()
        })
    });
    assert_eq!(all.len(), 9);
    for (got, expect) in all {
        assert_eq!(got, expect);
    }
    assert_eq!(report.completed, 9);
}

#[test]
fn partial_interactive_batch_flushes_at_its_own_deadline_under_batch_flood() {
    // Regression: the batcher used to check lane deadlines only when its
    // recv timed out, so a steady message stream starved every deadline
    // flush. With per-(model, class) lanes and expiry checks on the
    // message path, a partial interactive batch must dispatch at its own
    // short deadline even while a batch-class lane is still filling under
    // a continuous flood.
    let net = net();
    let config = ServerConfig {
        replicas: 2,
        max_batch: 400,
        flush_deadline: Duration::from_secs(10),
        interactive_flush_deadline: Duration::from_millis(2),
        ..ServerConfig::default()
    };
    let server = Server::builder().config(config).model("m", &net).start().expect("start");
    let client = server.client();

    let feeder = {
        let client = client.clone();
        std::thread::spawn(move || {
            (0..150u64)
                .map(|i| {
                    let t = client.submit(image(8, 9000 + i)).expect("admitted");
                    std::thread::sleep(Duration::from_millis(2));
                    t
                })
                .collect::<Vec<_>>()
        })
    };

    // Let the flood establish a steady stream, then time one interactive
    // request through the middle of it.
    std::thread::sleep(Duration::from_millis(50));
    let started = std::time::Instant::now();
    let resp = client
        .submit_with(image(8, 77), SubmitOptions::default().priority(Priority::Interactive))
        .expect("admitted")
        .wait()
        .expect("answered");
    let waited = started.elapsed();

    assert_eq!(resp.stats.priority, Priority::Interactive);
    assert_eq!(resp.stats.batch_size, 1, "partial interactive batch must flush alone");
    assert!(
        waited < Duration::from_millis(500),
        "interactive request starved behind the batch flood: waited {waited:?}"
    );

    let batch_tickets = feeder.join().expect("feeder thread");
    // The batch-class lane is still filling (max_batch 400, 10 s flush
    // deadline): none of the flood may have dispatched yet.
    assert!(
        batch_tickets.last().expect("non-empty").try_wait().is_none(),
        "batch-class lane flushed early"
    );

    let report = server.shutdown();
    for t in batch_tickets {
        t.wait().expect("batch-class requests drain at shutdown");
    }
    assert_eq!(report.completed, 151);
    assert_eq!(report.class(Priority::Interactive).map(|c| c.completed), Some(1));
    assert_eq!(report.class(Priority::Batch).map(|c| c.completed), Some(150));
}

#[test]
fn model_resolution_errors_hand_the_image_back() {
    let net = net();
    let other = Network::random(models::test_net(8, 6, 3), 43);
    let server = Server::builder()
        .config(ServerConfig { replicas: 1, ..ServerConfig::default() })
        .model("alpha", &net)
        .model("beta", &other)
        .start()
        .expect("start");
    let client = server.client();

    match client.submit_with(image(8, 1), SubmitOptions::model("gamma")) {
        Err(SubmitError::UnknownModel { model, image }) => {
            assert_eq!(model, "gamma");
            assert_eq!(image.shape(), Shape3::square(8, 3), "image handed back");
        }
        Ok(_) => panic!("expected UnknownModel, got a ticket"),
        Err(other) => panic!("expected UnknownModel, got {other:?}"),
    }
    // With several models registered, a bare submit has no unique target.
    match client.submit(image(8, 2)) {
        Err(SubmitError::AmbiguousModel(img)) => {
            assert_eq!(img.shape(), Shape3::square(8, 3), "image handed back");
        }
        Ok(_) => panic!("expected AmbiguousModel, got a ticket"),
        Err(other) => panic!("expected AmbiguousModel, got {other:?}"),
    }

    let report = server.shutdown();
    assert_eq!(report.submitted, 0, "failed resolutions never reach admission");
}

#[test]
fn builder_rejects_invalid_registrations_with_typed_errors() {
    let net = net();
    assert!(matches!(Server::builder().start(), Err(ConfigError::NoModels)));
    assert!(matches!(
        Server::builder().model("m", &net).model("m", &net).start(),
        Err(ConfigError::DuplicateModel(name)) if name == "m"
    ));
    assert!(matches!(
        Server::builder()
            .model_with("m", &net, ModelOptions::new().replicas(0))
            .start(),
        Err(ConfigError::ZeroReplicas)
    ));
}

#[test]
fn ticket_wait_timeout_reports_pending_then_delivers() {
    let net = net();
    let server = Server::builder()
        .config(ServerConfig { replicas: 1, max_batch: 1, ..ServerConfig::default() })
        .model_with(
            "m",
            &net,
            ModelOptions::new().replicas(1).synthetic_delay(Duration::from_millis(120)),
        )
        .start()
        .expect("start");
    let client = server.client();

    let ticket = client.submit(image(8, 5)).expect("admitted");
    // Well before the synthetic service time: the poll must return None
    // without consuming the eventual response.
    assert!(ticket.wait_timeout(Duration::ZERO).is_none(), "instant poll can't have an answer");
    assert!(
        ticket.wait_timeout(Duration::from_millis(1)).is_none(),
        "short poll can't have an answer"
    );
    // Generous bound: the same ticket still delivers the real response.
    let resp = ticket
        .wait_timeout(Duration::from_secs(20))
        .expect("response within bound")
        .expect("answered");
    assert_eq!(resp.logits, net.forward(&image(8, 5)).logits);
    server.shutdown();
}

#[test]
fn resize_pool_lands_while_the_pool_is_saturated() {
    let net = net();
    let server = Server::builder()
        .config(ServerConfig { max_batch: 1, ..ServerConfig::default() })
        .model_with(
            "m",
            &net,
            ModelOptions::new().replicas(1).synthetic_delay(Duration::from_millis(100)),
        )
        .start()
        .expect("start");
    let client = server.client();

    // Typed refusals first.
    assert_eq!(server.resize_pool("nope", 2), Err(ResizeError::UnknownModel("nope".into())));
    assert_eq!(server.resize_pool("m", 0), Err(ResizeError::ZeroReplicas));

    // Bury the single replica under a backlog (~30 × 100 ms of work),
    // then resize. The resize must take effect while that backlog is
    // still queued — not after it drains — or an autoscaler could never
    // relieve the very saturation that triggered it.
    let held: Vec<Ticket> =
        (0..30).map(|i| client.submit(image(8, 100 + i)).expect("admitted")).collect();
    let resized_in = {
        let t0 = std::time::Instant::now();
        assert_eq!(server.resize_pool("m", 3), Ok((1, 3)));
        t0.elapsed()
    };
    assert!(
        resized_in < Duration::from_millis(1500),
        "resize waited for the backlog to drain: {resized_in:?}"
    );
    assert_eq!(server.load_window("m").expect("known model").replicas, 3);

    // Shrink back below the backlog too, then drain everything: no
    // request may be lost across either reshape.
    assert_eq!(server.resize_pool("m", 2), Ok((3, 2)));
    for t in held {
        t.wait().expect("survives both reshapes");
    }
    let report = server.shutdown();
    assert_eq!(report.completed, 30);
    assert_eq!(report.rejected + report.shed, 0);
}
