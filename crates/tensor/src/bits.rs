//! Bit-packed storage for binary (±1) weights and activation bit-planes.
//!
//! The paper stores binarized weights in on-chip caches where each address
//! holds all `K × K × I` bits of one filter so the whole filter is available
//! in a single clock (paper §III-B1a). [`BinaryFilters`] mirrors that
//! geometry: one packed row per output feature map.
//!
//! Bit convention: bit = 1 encodes weight +1, bit = 0 encodes weight −1
//! (the `Sign` transform of the paper applied to 32-bit float weights).

/// Number of bits per packing word.
pub const WORD_BITS: usize = 64;

/// A fixed-length packed bit vector.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

impl BitVec {
    /// All-zeros (all −1 weights) vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            len,
            words: vec![0; len.div_ceil(WORD_BITS)],
        }
    }

    /// Build from a boolean slice (`true` ⇒ bit 1 ⇒ +1).
    pub fn from_bools(bools: &[bool]) -> Self {
        let mut v = Self::zeros(bools.len());
        for (i, &b) in bools.iter().enumerate() {
            if b {
                v.set(i, true);
            }
        }
        v
    }

    /// Build from ±1 (or sign of arbitrary) values: `x ≥ 0` packs as 1.
    ///
    /// This is the `Sign` binarization the DFE applies to incoming 32-bit
    /// float weights before caching them (paper §III-B1a).
    pub fn from_signs(values: &[f32]) -> Self {
        let mut v = Self::zeros(values.len());
        for (i, &x) in values.iter().enumerate() {
            if x >= 0.0 {
                v.set(i, true);
            }
        }
        v
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the vector holds no bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Write bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        debug_assert!(i < self.len);
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        if v {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
    }

    /// The ±1 value encoded by bit `i`.
    #[inline]
    pub fn sign(&self, i: usize) -> i32 {
        if self.get(i) {
            1
        } else {
            -1
        }
    }

    /// Packed words. Trailing bits beyond `len` are zero.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable access to the packed words for bulk rewrites. Callers must
    /// keep trailing bits beyond `len` zero — `count_ones` and the popcount
    /// primitives rely on it.
    #[inline]
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Population count (number of 1 bits).
    #[inline]
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// XNOR-popcount against another vector of the same length: the number of
    /// bit positions where the two vectors agree.
    ///
    /// With both operands encoding ±1 values, the ±1 dot product is
    /// `2 · xnor_popcount − len` — the core BNN primitive (paper §III-B1).
    pub fn xnor_popcount(&self, other: &Self) -> u32 {
        assert_eq!(self.len, other.len, "xnor_popcount length mismatch");
        let full_words = self.len / WORD_BITS;
        let mut agree = 0u32;
        for i in 0..full_words {
            agree += (!(self.words[i] ^ other.words[i])).count_ones();
        }
        let tail = self.len % WORD_BITS;
        if tail != 0 {
            let mask = (1u64 << tail) - 1;
            agree += ((!(self.words[full_words] ^ other.words[full_words])) & mask).count_ones();
        }
        agree
    }

    /// AND-popcount against another vector: positions where both bits are 1.
    ///
    /// Used for the multi-bit activation planes, where activations are
    /// unsigned `{0,1}` per plane rather than ±1.
    pub fn and_popcount(&self, other: &Self) -> u32 {
        assert_eq!(self.len, other.len, "and_popcount length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones())
            .sum()
    }

    /// Bits as an iterator of bools.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Copy `len` bits from `src` starting at bit `src_off` into `self`
    /// starting at bit `dst_off` (shift-based, word-at-a-time).
    ///
    /// This is the window-extraction primitive of the packed conv datapath:
    /// one call moves a whole row of a convolution window between a
    /// plane ring and a packed window, replacing `len` scalar get/set
    /// pairs. Bits outside the target range are untouched, so the
    /// trailing-bits-zero invariant is preserved.
    ///
    /// # Panics
    /// Panics if either range runs past the corresponding vector.
    #[inline]
    pub fn copy_bitrange_from(&mut self, dst_off: usize, src: &Self, src_off: usize, len: usize) {
        assert!(src_off + len <= src.len, "copy_bitrange source overrun");
        assert!(dst_off + len <= self.len, "copy_bitrange destination overrun");
        copy_bitrange(&mut self.words, dst_off, &src.words, src_off, len);
    }

    /// Popcount of the `len`-bit span starting at bit `off`.
    ///
    /// # Panics
    /// Panics if the span runs past the vector.
    #[inline]
    pub fn popcount_range(&self, off: usize, len: usize) -> u32 {
        assert!(off + len <= self.len, "popcount_range overrun");
        popcount_range(&self.words, off, len)
    }
}

/// Read `n ∈ 1..=64` bits of `src` starting at bit `off` into the low bits
/// of a word.
#[inline]
fn get_bits(src: &[u64], off: usize, n: usize) -> u64 {
    debug_assert!((1..=WORD_BITS).contains(&n));
    let (w, b) = (off / WORD_BITS, off % WORD_BITS);
    let mut v = src[w] >> b;
    if b != 0 && b + n > WORD_BITS {
        v |= src[w + 1] << (WORD_BITS - b);
    }
    if n < WORD_BITS {
        v &= (1u64 << n) - 1;
    }
    v
}

/// Write the low `n ∈ 1..=64` bits of `v` into `dst` starting at bit `off`,
/// leaving every other bit untouched. `v`'s bits above `n` must be zero.
#[inline]
fn set_bits(dst: &mut [u64], off: usize, n: usize, v: u64) {
    debug_assert!((1..=WORD_BITS).contains(&n));
    debug_assert!(n == WORD_BITS || v >> n == 0);
    let (w, b) = (off / WORD_BITS, off % WORD_BITS);
    let mask = if n == WORD_BITS { u64::MAX } else { (1u64 << n) - 1 };
    // `mask << b` self-truncates when the span crosses into the next word.
    dst[w] = (dst[w] & !(mask << b)) | (v << b);
    if b + n > WORD_BITS {
        let hi = n - (WORD_BITS - b);
        let hi_mask = (1u64 << hi) - 1;
        dst[w + 1] = (dst[w + 1] & !hi_mask) | (v >> (WORD_BITS - b));
    }
}

/// Copy `len` bits between packed word slices at arbitrary bit offsets —
/// the shift-based span move behind [`BitVec::copy_bitrange_from`].
///
/// Callers must guarantee both spans fit inside their slices (the `BitVec`
/// wrapper asserts this against the logical lengths).
pub fn copy_bitrange(dst: &mut [u64], dst_off: usize, src: &[u64], src_off: usize, len: usize) {
    let mut done = 0;
    while done < len {
        let n = (len - done).min(WORD_BITS);
        let v = get_bits(src, src_off + done, n);
        set_bits(dst, dst_off + done, n, v);
        done += n;
    }
}

/// Popcount of an arbitrary `len`-bit span of a packed word slice — the
/// word-level companion of [`copy_bitrange`] (behind
/// [`BitVec::popcount_range`]).
pub fn popcount_range(words: &[u64], off: usize, len: usize) -> u32 {
    let mut count = 0;
    let mut done = 0;
    while done < len {
        let n = (len - done).min(WORD_BITS);
        count += get_bits(words, off + done, n).count_ones();
        done += n;
    }
    count
}

/// A bank of `O` binary filters, each `K × K × I` bits — the weight cache of
/// one convolution kernel (paper §III-B1a: "each address of the cache stores
/// K × K × I weights and the cache has O entries").
#[derive(Clone, Debug)]
pub struct BinaryFilters {
    bits_per_filter: usize,
    filters: Vec<BitVec>,
}

impl BinaryFilters {
    /// Binarize a float weight bank laid out as `O` rows of `K·K·I` values,
    /// each row in the same depth-first order as the input stream
    /// (ky, kx, c innermost).
    ///
    /// # Panics
    /// Panics if `weights.len()` is not a multiple of `bits_per_filter`.
    pub fn from_float_rows(weights: &[f32], bits_per_filter: usize) -> Self {
        assert!(bits_per_filter > 0);
        assert_eq!(
            weights.len() % bits_per_filter,
            0,
            "weight count {} not a multiple of filter size {}",
            weights.len(),
            bits_per_filter
        );
        let filters = weights
            .chunks_exact(bits_per_filter)
            .map(BitVec::from_signs)
            .collect();
        Self {
            bits_per_filter,
            filters,
        }
    }

    /// Assemble from pre-packed rows.
    ///
    /// # Panics
    /// Panics if rows have differing lengths.
    pub fn from_rows(filters: Vec<BitVec>) -> Self {
        let bits_per_filter = filters.first().map_or(0, BitVec::len);
        assert!(
            filters.iter().all(|f| f.len() == bits_per_filter),
            "all filters must have equal length"
        );
        Self {
            bits_per_filter,
            filters,
        }
    }

    /// Number of filters (`O`, cache entries).
    #[inline]
    pub fn num_filters(&self) -> usize {
        self.filters.len()
    }

    /// Bits per filter (`K·K·I`, cache word width).
    #[inline]
    pub fn bits_per_filter(&self) -> usize {
        self.bits_per_filter
    }

    /// One filter row.
    #[inline]
    pub fn filter(&self, o: usize) -> &BitVec {
        &self.filters[o]
    }

    /// Iterate filters in output-map order.
    pub fn iter(&self) -> impl Iterator<Item = &BitVec> {
        self.filters.iter()
    }

    /// Total storage bits actually occupied (before BRAM shape quantization).
    pub fn storage_bits(&self) -> usize {
        self.bits_per_filter * self.filters.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dot_reference(a: &[i32], b: &[i32]) -> i32 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    #[test]
    fn set_get_roundtrip_across_word_boundary() {
        let mut v = BitVec::zeros(130);
        v.set(0, true);
        v.set(63, true);
        v.set(64, true);
        v.set(129, true);
        assert!(v.get(0) && v.get(63) && v.get(64) && v.get(129));
        assert!(!v.get(1) && !v.get(65) && !v.get(128));
        assert_eq!(v.count_ones(), 4);
        v.set(64, false);
        assert!(!v.get(64));
        assert_eq!(v.count_ones(), 3);
    }

    #[test]
    fn xnor_popcount_equals_pm1_dot() {
        // ±1 dot product = 2·agreements − n, on a length that is not a
        // multiple of the word size to exercise the tail mask.
        let n = 100;
        let a_sign: Vec<i32> = (0..n)
            .map(|i| if (i * 7) % 3 == 0 { 1 } else { -1 })
            .collect();
        let b_sign: Vec<i32> = (0..n)
            .map(|i| if (i * 5) % 4 < 2 { 1 } else { -1 })
            .collect();
        let a = BitVec::from_bools(&a_sign.iter().map(|&s| s > 0).collect::<Vec<_>>());
        let b = BitVec::from_bools(&b_sign.iter().map(|&s| s > 0).collect::<Vec<_>>());
        let dot = 2 * a.xnor_popcount(&b) as i32 - n;
        assert_eq!(dot, dot_reference(&a_sign, &b_sign));
    }

    #[test]
    fn xnor_popcount_ignores_padding_bits() {
        // Trailing word bits beyond len would agree (both zero) and must not
        // be counted.
        let a = BitVec::zeros(3);
        let b = BitVec::zeros(3);
        assert_eq!(a.xnor_popcount(&b), 3);
    }

    #[test]
    fn and_popcount_counts_joint_ones() {
        let a = BitVec::from_bools(&[true, true, false, false, true]);
        let b = BitVec::from_bools(&[true, false, true, false, true]);
        assert_eq!(a.and_popcount(&b), 2);
    }

    #[test]
    fn from_signs_maps_nonnegative_to_plus_one() {
        let v = BitVec::from_signs(&[-0.5, 0.0, 1.5, -2.0]);
        assert_eq!(v.sign(0), -1);
        assert_eq!(v.sign(1), 1); // sign(0) = +1 by convention
        assert_eq!(v.sign(2), 1);
        assert_eq!(v.sign(3), -1);
    }

    #[test]
    fn binary_filters_geometry() {
        // 4 filters of 3·3·2 = 18 bits each.
        let weights: Vec<f32> = (0..72)
            .map(|i| if i % 3 == 0 { 1.0 } else { -1.0 })
            .collect();
        let bank = BinaryFilters::from_float_rows(&weights, 18);
        assert_eq!(bank.num_filters(), 4);
        assert_eq!(bank.bits_per_filter(), 18);
        assert_eq!(bank.storage_bits(), 72);
        // Row 0 packs weights [0..18): indices divisible by 3 are +1.
        assert!(bank.filter(0).get(0));
        assert!(!bank.filter(0).get(1));
        assert!(bank.filter(0).get(3));
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn filters_reject_ragged_weights() {
        let _ = BinaryFilters::from_float_rows(&[1.0; 10], 3);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn xnor_length_mismatch_panics() {
        let _ = BitVec::zeros(3).xnor_popcount(&BitVec::zeros(4));
    }

    fn patterned(len: usize, seed: u64) -> BitVec {
        BitVec::from_bools(
            &(0..len)
                .map(|i| (i as u64).wrapping_mul(seed).wrapping_add(seed / 3) % 7 < 3)
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn copy_bitrange_matches_scalar_copy_across_word_boundaries() {
        let src = patterned(200, 11);
        for (src_off, dst_off, len) in
            [(0, 0, 200), (63, 1, 66), (1, 63, 130), (64, 64, 64), (127, 3, 65), (5, 190, 9)]
        {
            let mut dst = patterned(200, 29);
            let mut expect = dst.clone();
            for i in 0..len {
                expect.set(dst_off + i, src.get(src_off + i));
            }
            dst.copy_bitrange_from(dst_off, &src, src_off, len);
            assert_eq!(dst, expect, "src_off={src_off} dst_off={dst_off} len={len}");
        }
    }

    #[test]
    fn copy_bitrange_zero_len_is_identity() {
        let src = patterned(70, 7);
        let mut dst = patterned(70, 13);
        let before = dst.clone();
        dst.copy_bitrange_from(40, &src, 3, 0);
        assert_eq!(dst, before);
    }

    #[test]
    fn popcount_range_matches_scalar_count() {
        let v = patterned(300, 17);
        for (off, len) in [(0, 300), (63, 2), (64, 64), (1, 64), (130, 111), (299, 1), (10, 0)] {
            let expect = (0..len).filter(|&i| v.get(off + i)).count() as u32;
            assert_eq!(v.popcount_range(off, len), expect, "off={off} len={len}");
        }
    }

    #[test]
    #[should_panic(expected = "destination overrun")]
    fn copy_bitrange_rejects_destination_overrun() {
        let src = BitVec::zeros(100);
        let mut dst = BitVec::zeros(50);
        dst.copy_bitrange_from(40, &src, 0, 20);
    }

    #[test]
    #[should_panic(expected = "source overrun")]
    fn copy_bitrange_rejects_source_overrun() {
        let src = BitVec::zeros(30);
        let mut dst = BitVec::zeros(100);
        dst.copy_bitrange_from(0, &src, 20, 20);
    }

    #[test]
    #[should_panic(expected = "popcount_range overrun")]
    fn popcount_range_rejects_overrun() {
        let _ = BitVec::zeros(64).popcount_range(60, 5);
    }
}
