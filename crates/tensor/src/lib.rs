//! Tensors and bit-packed quantized tensors for streaming QNN inference.
//!
//! The streaming architecture of Baskin et al. processes feature maps in
//! *depth-first* order (paper §III-B1b, Fig. 4): for each spatial position,
//! all channels are visited before advancing to the next pixel. Everything in
//! this crate is laid out to make that order the contiguous one:
//! [`Tensor3`] stores data as `H × W × C` with the channel index innermost,
//! so iterating the backing slice *is* the stream order seen by the DFE.
//!
//! Binary weights (1 bit per parameter, paper §III-B1a) are held in
//! [`BitVec`] / [`BinaryFilters`], packed 64 per machine word so that the
//! XNOR-popcount convolution in `qnn-quant` runs on whole words.

pub mod bits;
pub mod shape;
pub mod tensor;

pub use bits::{BinaryFilters, BitVec};
pub use shape::{ConvGeometry, FilterShape, Shape3};
pub use tensor::Tensor3;
