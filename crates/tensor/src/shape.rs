//! Shape arithmetic for feature maps and filters.

use std::fmt;

/// Shape of a feature map: height × width × channels, channel-innermost.
///
/// The linear index of element `(y, x, c)` is `(y * w + x) * c_total + c`,
/// which is exactly the depth-first stream order of the paper (Fig. 4a).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape3 {
    /// Height (rows).
    pub h: usize,
    /// Width (columns).
    pub w: usize,
    /// Channels (feature maps).
    pub c: usize,
}

impl Shape3 {
    /// Create a new shape.
    #[inline]
    pub const fn new(h: usize, w: usize, c: usize) -> Self {
        Self { h, w, c }
    }

    /// Square spatial shape helper.
    #[inline]
    pub const fn square(side: usize, c: usize) -> Self {
        Self { h: side, w: side, c }
    }

    /// Total number of scalar elements.
    #[inline]
    pub const fn len(&self) -> usize {
        self.h * self.w * self.c
    }

    /// True when the shape contains no elements.
    #[inline]
    pub const fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of spatial positions (pixels).
    #[inline]
    pub const fn pixels(&self) -> usize {
        self.h * self.w
    }

    /// Linear index of `(y, x, c)` in depth-first stream order.
    #[inline]
    pub const fn index(&self, y: usize, x: usize, c: usize) -> usize {
        (y * self.w + x) * self.c + c
    }

    /// Inverse of [`Shape3::index`].
    #[inline]
    pub const fn coords(&self, idx: usize) -> (usize, usize, usize) {
        let c = idx % self.c;
        let px = idx / self.c;
        (px / self.w, px % self.w, c)
    }
}

impl fmt::Debug for Shape3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.h, self.w, self.c)
    }
}

impl fmt::Display for Shape3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}×{}×{}", self.h, self.w, self.c)
    }
}

/// Shape of a convolution filter bank: `K × K × I` weights per output map,
/// `O` output maps (paper §III-B1a).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct FilterShape {
    /// Spatial kernel size (square filters only, as in the paper's networks).
    pub k: usize,
    /// Input feature maps.
    pub i: usize,
    /// Output feature maps.
    pub o: usize,
}

impl FilterShape {
    /// Create a new filter bank shape.
    #[inline]
    pub const fn new(k: usize, i: usize, o: usize) -> Self {
        Self { k, i, o }
    }

    /// Weights needed to produce one output pixel: `K × K × I`.
    ///
    /// One cache *entry* in the weight store holds this many bits so that a
    /// whole filter can be read in a single cycle (paper §III-B1a).
    #[inline]
    pub const fn weights_per_filter(&self) -> usize {
        self.k * self.k * self.i
    }

    /// Total number of weights in the bank: `K × K × I × O`.
    #[inline]
    pub const fn total_weights(&self) -> usize {
        self.weights_per_filter() * self.o
    }
}

impl fmt::Debug for FilterShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}->{}", self.k, self.k, self.i, self.o)
    }
}

/// Full geometry of one convolution (or pooling) layer: input shape, filter
/// bank, stride and symmetric padding.
///
/// This is the unit the analytic cycle/resource models and the streaming
/// kernels both consume, so the two can never disagree about sizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ConvGeometry {
    /// Input feature-map shape.
    pub input: Shape3,
    /// Filter bank shape. `filter.i` must equal `input.c`.
    pub filter: FilterShape,
    /// Spatial stride (same in both dimensions).
    pub stride: usize,
    /// Symmetric spatial padding added on every border.
    pub pad: usize,
}

impl ConvGeometry {
    /// Build a geometry, checking channel agreement.
    ///
    /// # Panics
    /// Panics if `filter.i != input.c`, if the stride is zero, or if the
    /// padded input is smaller than the kernel.
    pub fn new(input: Shape3, filter: FilterShape, stride: usize, pad: usize) -> Self {
        assert_eq!(
            filter.i, input.c,
            "filter input channels ({}) must match input shape channels ({})",
            filter.i, input.c
        );
        assert!(stride > 0, "stride must be positive");
        assert!(
            input.h + 2 * pad >= filter.k && input.w + 2 * pad >= filter.k,
            "padded input {input:?} smaller than kernel {}",
            filter.k
        );
        Self { input, filter, stride, pad }
    }

    /// Padded input shape.
    #[inline]
    pub fn padded_input(&self) -> Shape3 {
        Shape3::new(self.input.h + 2 * self.pad, self.input.w + 2 * self.pad, self.input.c)
    }

    /// Output feature-map shape using the standard floor formula.
    #[inline]
    pub fn output(&self) -> Shape3 {
        let p = self.padded_input();
        Shape3::new(
            (p.h - self.filter.k) / self.stride + 1,
            (p.w - self.filter.k) / self.stride + 1,
            self.filter.o,
        )
    }

    /// Multiply–accumulate operations for one image through this layer.
    #[inline]
    pub fn macs(&self) -> u64 {
        let out = self.output();
        out.pixels() as u64 * self.filter.o as u64 * self.filter.weights_per_filter() as u64
            / self.filter.o as u64
            * self.filter.o as u64
    }

    /// Size, in elements, of the depth-first (row-scan) window buffer:
    /// `I·(W·(K−1) + K)` for the padded input width.
    ///
    /// This is the paper's §III-B1b expression with H↔W swapped because we
    /// scan rows rather than columns; the asymptotics — Θ(I·W·K) versus
    /// Θ(H·W·I) for the width-first scan — are identical.
    #[inline]
    pub fn depth_first_buffer(&self) -> usize {
        let p = self.padded_input();
        p.c * (p.w * (self.filter.k - 1) + self.filter.k)
    }

    /// Size, in elements, of the width-first scan buffer:
    /// `H·W·(I−1) + W·(K−1) + K` (paper Fig. 4b, H↔W swapped).
    #[inline]
    pub fn width_first_buffer(&self) -> usize {
        let p = self.padded_input();
        p.h * p.w * (p.c - 1) + p.w * (self.filter.k - 1) + self.filter.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_index_roundtrip() {
        let s = Shape3::new(4, 5, 3);
        for y in 0..4 {
            for x in 0..5 {
                for c in 0..3 {
                    let idx = s.index(y, x, c);
                    assert_eq!(s.coords(idx), (y, x, c));
                }
            }
        }
        assert_eq!(s.len(), 60);
        assert_eq!(s.pixels(), 20);
    }

    #[test]
    fn stream_order_is_depth_first() {
        // Index must advance channel-first: (0,0,0), (0,0,1), ..., (0,1,0), ...
        let s = Shape3::new(2, 2, 2);
        let order: Vec<_> = (0..s.len()).map(|i| s.coords(i)).collect();
        assert_eq!(
            order,
            vec![
                (0, 0, 0),
                (0, 0, 1),
                (0, 1, 0),
                (0, 1, 1),
                (1, 0, 0),
                (1, 0, 1),
                (1, 1, 0),
                (1, 1, 1)
            ]
        );
    }

    #[test]
    fn conv_output_shapes_match_resnet_table1() {
        // conv1 of ResNet-18: 224×224×3, 7×7×3→64, stride 2, pad 3 → 112×112×64.
        let g = ConvGeometry::new(
            Shape3::square(224, 3),
            FilterShape::new(7, 3, 64),
            2,
            3,
        );
        assert_eq!(g.output(), Shape3::square(112, 64));

        // conv2_x body: 56×56×64, 3×3×64→64, stride 1, pad 1 → 56×56×64.
        let g = ConvGeometry::new(Shape3::square(56, 64), FilterShape::new(3, 64, 64), 1, 1);
        assert_eq!(g.output(), Shape3::square(56, 64));

        // conv3_1 downsample: 56×56×64 → 28×28×128 with stride 2.
        let g = ConvGeometry::new(Shape3::square(56, 64), FilterShape::new(3, 64, 128), 2, 1);
        assert_eq!(g.output(), Shape3::square(28, 128));
    }

    #[test]
    fn alexnet_conv1_geometry() {
        // AlexNet conv1: 224×224×3, 11×11×3→64 (Hubara variant), stride 4, pad 2 → 55×55.
        let g = ConvGeometry::new(
            Shape3::square(224, 3),
            FilterShape::new(11, 3, 64),
            4,
            2,
        );
        assert_eq!(g.output().h, 55);
        assert_eq!(g.output().w, 55);
    }

    #[test]
    fn depth_first_buffer_is_smaller_when_w_exceeds_k() {
        // Paper §III-B1b: since W > K, depth-first scanning guarantees the
        // smaller buffer. Check on a realistic layer.
        let g = ConvGeometry::new(Shape3::square(56, 64), FilterShape::new(3, 64, 64), 1, 1);
        assert!(g.depth_first_buffer() < g.width_first_buffer());
        // Θ(I·W·K) vs Θ(H·W·I): ratio should be roughly K/H.
        let ratio = g.width_first_buffer() as f64 / g.depth_first_buffer() as f64;
        assert!(ratio > 10.0, "expected order-of-magnitude gap, got {ratio}");
    }

    #[test]
    fn width_first_buffer_wins_only_for_degenerate_width() {
        // If W < K the inequality can flip; the formulas must still agree on
        // the crossover direction.
        let g = ConvGeometry::new(Shape3::new(64, 3, 2), FilterShape::new(3, 2, 4), 1, 0);
        // depth-first: 2*(3*2+3)=18; width-first: 64*3*1 + 3*2 + 3 = 201.
        assert_eq!(g.depth_first_buffer(), 18);
        assert_eq!(g.width_first_buffer(), 201);
    }

    #[test]
    fn filter_shape_weight_counts() {
        let f = FilterShape::new(3, 64, 128);
        assert_eq!(f.weights_per_filter(), 3 * 3 * 64);
        assert_eq!(f.total_weights(), 3 * 3 * 64 * 128);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn mismatched_channels_panic() {
        let _ = ConvGeometry::new(Shape3::square(8, 3), FilterShape::new(3, 4, 8), 1, 1);
    }

    #[test]
    #[should_panic(expected = "smaller than kernel")]
    fn kernel_larger_than_input_panics() {
        let _ = ConvGeometry::new(Shape3::square(2, 3), FilterShape::new(5, 3, 8), 1, 0);
    }

    #[test]
    fn macs_of_resnet_conv1() {
        let g = ConvGeometry::new(Shape3::square(224, 3), FilterShape::new(7, 3, 64), 2, 3);
        // 112*112*64 outputs × 7*7*3 MACs each.
        assert_eq!(g.macs(), 112 * 112 * 64 * 7 * 7 * 3);
    }
}
