//! Dense 3-D tensors in depth-first (channel-innermost) layout.

use crate::shape::Shape3;

/// A dense `H × W × C` tensor whose backing storage is ordered exactly like
/// the DFE input stream: channel innermost, then columns, then rows.
///
/// `T` is typically `f32` (pre-quantization values), `i32` (accumulators),
/// `i16` (skip-connection data, paper §III-B5), `u8` (n-bit activation
/// codes) or `i8` (first-layer fixed-point pixels).
#[derive(Clone, PartialEq)]
pub struct Tensor3<T> {
    shape: Shape3,
    data: Vec<T>,
}

impl<T: Copy + Default> Tensor3<T> {
    /// Create a tensor filled with `T::default()`.
    pub fn zeros(shape: Shape3) -> Self {
        Self { shape, data: vec![T::default(); shape.len()] }
    }

    /// Create a tensor by evaluating `f(y, x, c)` at every element.
    pub fn from_fn(shape: Shape3, mut f: impl FnMut(usize, usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(shape.len());
        for y in 0..shape.h {
            for x in 0..shape.w {
                for c in 0..shape.c {
                    data.push(f(y, x, c));
                }
            }
        }
        Self { shape, data }
    }

    /// Wrap an existing buffer already in stream order.
    ///
    /// # Panics
    /// Panics if `data.len() != shape.len()`.
    pub fn from_vec(shape: Shape3, data: Vec<T>) -> Self {
        assert_eq!(data.len(), shape.len(), "buffer length does not match shape {shape:?}");
        Self { shape, data }
    }

    /// Tensor shape.
    #[inline]
    pub fn shape(&self) -> Shape3 {
        self.shape
    }

    /// Element at `(y, x, c)`.
    #[inline]
    pub fn get(&self, y: usize, x: usize, c: usize) -> T {
        self.data[self.shape.index(y, x, c)]
    }

    /// Set element at `(y, x, c)`.
    #[inline]
    pub fn set(&mut self, y: usize, x: usize, c: usize, v: T) {
        let idx = self.shape.index(y, x, c);
        self.data[idx] = v;
    }

    /// Backing slice in stream order.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable backing slice in stream order.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume into the backing vector (stream order).
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Iterate `(y, x, c, value)` in stream order.
    pub fn iter_stream(&self) -> impl Iterator<Item = (usize, usize, usize, T)> + '_ {
        let shape = self.shape;
        self.data.iter().enumerate().map(move |(i, &v)| {
            let (y, x, c) = shape.coords(i);
            (y, x, c, v)
        })
    }

    /// Return a new tensor padded by `pad` pixels on every spatial border,
    /// filled with `fill`.
    ///
    /// For BNNs the only representable values are ±1, so the paper pads with
    /// −1 instead of 0 (§III-B1); the caller picks `fill` accordingly.
    pub fn pad(&self, pad: usize, fill: T) -> Self {
        if pad == 0 {
            return self.clone();
        }
        let out_shape = Shape3::new(self.shape.h + 2 * pad, self.shape.w + 2 * pad, self.shape.c);
        let mut out = Self { shape: out_shape, data: vec![fill; out_shape.len()] };
        for y in 0..self.shape.h {
            for x in 0..self.shape.w {
                let src = self.shape.index(y, x, 0);
                let dst = out_shape.index(y + pad, x + pad, 0);
                out.data[dst..dst + self.shape.c]
                    .copy_from_slice(&self.data[src..src + self.shape.c]);
            }
        }
        out
    }

    /// Extract the channel vector at a spatial position as a slice.
    #[inline]
    pub fn pixel(&self, y: usize, x: usize) -> &[T] {
        let start = self.shape.index(y, x, 0);
        &self.data[start..start + self.shape.c]
    }

    /// Map every element through `f`, producing a tensor of a new type.
    pub fn map<U: Copy + Default>(&self, mut f: impl FnMut(T) -> U) -> Tensor3<U> {
        Tensor3 { shape: self.shape, data: self.data.iter().map(|&v| f(v)).collect() }
    }
}

impl<T: Copy + Default + std::fmt::Debug> std::fmt::Debug for Tensor3<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor3<{}>({:?})", std::any::type_name::<T>(), self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_set_get() {
        let mut t = Tensor3::<i32>::zeros(Shape3::new(2, 3, 4));
        assert_eq!(t.get(1, 2, 3), 0);
        t.set(1, 2, 3, 42);
        assert_eq!(t.get(1, 2, 3), 42);
        assert_eq!(t.as_slice().len(), 24);
    }

    #[test]
    fn from_fn_matches_get() {
        let t = Tensor3::from_fn(Shape3::new(3, 4, 2), |y, x, c| (y * 100 + x * 10 + c) as i32);
        for y in 0..3 {
            for x in 0..4 {
                for c in 0..2 {
                    assert_eq!(t.get(y, x, c), (y * 100 + x * 10 + c) as i32);
                }
            }
        }
    }

    #[test]
    fn stream_iteration_is_channel_innermost() {
        let t = Tensor3::from_fn(Shape3::new(1, 2, 2), |_, x, c| (x * 2 + c) as i32);
        let vals: Vec<i32> = t.iter_stream().map(|(_, _, _, v)| v).collect();
        assert_eq!(vals, vec![0, 1, 2, 3]);
    }

    #[test]
    fn pad_places_fill_on_borders_only() {
        let t = Tensor3::from_fn(Shape3::new(2, 2, 1), |y, x, _| (y * 2 + x) as i32 + 1);
        let p = t.pad(1, -1);
        assert_eq!(p.shape(), Shape3::new(4, 4, 1));
        // Corners and edges are −1 (the BNN padding value).
        assert_eq!(p.get(0, 0, 0), -1);
        assert_eq!(p.get(3, 3, 0), -1);
        assert_eq!(p.get(0, 2, 0), -1);
        // Interior preserved.
        assert_eq!(p.get(1, 1, 0), 1);
        assert_eq!(p.get(2, 2, 0), 4);
    }

    #[test]
    fn pad_zero_is_identity() {
        let t = Tensor3::from_fn(Shape3::new(2, 2, 3), |y, x, c| (y + x + c) as i32);
        assert_eq!(t.pad(0, 0), t);
    }

    #[test]
    fn pixel_slice_is_channel_vector() {
        let t = Tensor3::from_fn(Shape3::new(2, 2, 3), |y, x, c| (y * 100 + x * 10 + c) as i32);
        assert_eq!(t.pixel(1, 0), &[100, 101, 102]);
    }

    #[test]
    fn map_changes_type() {
        let t = Tensor3::from_fn(Shape3::new(2, 2, 1), |y, x, _| (y + x) as i32);
        let f: Tensor3<f32> = t.map(|v| v as f32 * 0.5);
        assert_eq!(f.get(1, 1, 0), 1.0);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_length_mismatch_panics() {
        let _ = Tensor3::from_vec(Shape3::new(2, 2, 2), vec![0i32; 7]);
    }
}
