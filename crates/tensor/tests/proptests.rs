//! Property-based tests for tensor layout and bit-packing invariants.

use qnn_testkit::{any, prop_assert, prop_assert_eq, prop_assume, props};
use qnn_tensor::{BitVec, ConvGeometry, FilterShape, Shape3, Tensor3};

props! {
    /// index ∘ coords and coords ∘ index are inverse bijections.
    #[test]
    fn shape_index_bijection(h in 1usize..12, w in 1usize..12, c in 1usize..12) {
        let s = Shape3::new(h, w, c);
        for idx in 0..s.len() {
            let (y, x, ch) = s.coords(idx);
            prop_assert!(y < h && x < w && ch < c);
            prop_assert_eq!(s.index(y, x, ch), idx);
        }
    }

    /// XNOR-popcount always equals the naive ±1 dot product.
    #[test]
    fn xnor_popcount_matches_naive(bits_a in qnn_testkit::vec(any::<bool>(), 1..300)) {
        let n = bits_a.len();
        let bits_b: Vec<bool> = bits_a.iter().enumerate().map(|(i, &b)| b ^ (i % 3 == 0)).collect();
        let a = BitVec::from_bools(&bits_a);
        let b = BitVec::from_bools(&bits_b);
        let naive: i32 = bits_a
            .iter()
            .zip(&bits_b)
            .map(|(&x, &y)| (if x { 1 } else { -1 }) * (if y { 1 } else { -1 }))
            .sum();
        prop_assert_eq!(2 * a.xnor_popcount(&b) as i32 - n as i32, naive);
    }

    /// and_popcount equals the naive {0,1} dot product.
    #[test]
    fn and_popcount_matches_naive(bits_a in qnn_testkit::vec(any::<bool>(), 1..300)) {
        let bits_b: Vec<bool> = bits_a.iter().enumerate().map(|(i, &b)| b ^ (i % 2 == 0)).collect();
        let a = BitVec::from_bools(&bits_a);
        let b = BitVec::from_bools(&bits_b);
        let naive: u32 = bits_a.iter().zip(&bits_b).map(|(&x, &y)| u32::from(x && y)).sum();
        prop_assert_eq!(a.and_popcount(&b), naive);
    }

    /// Padding preserves the interior and fills the border.
    #[test]
    fn pad_preserves_interior(h in 1usize..8, w in 1usize..8, c in 1usize..4, pad in 0usize..3) {
        let t = Tensor3::from_fn(Shape3::new(h, w, c), |y, x, ch| (y * 1000 + x * 10 + ch) as i32);
        let p = t.pad(pad, -1);
        prop_assert_eq!(p.shape(), Shape3::new(h + 2 * pad, w + 2 * pad, c));
        for (y, x, ch, v) in p.iter_stream() {
            let interior = y >= pad && y < h + pad && x >= pad && x < w + pad;
            if interior {
                prop_assert_eq!(v, t.get(y - pad, x - pad, ch));
            } else {
                prop_assert_eq!(v, -1);
            }
        }
    }

    /// Conv output shape formula is consistent: every output position maps to
    /// a window fully inside the padded input.
    #[test]
    fn conv_windows_in_bounds(
        side in 3usize..20,
        c in 1usize..5,
        k in 1usize..5,
        stride in 1usize..3,
        pad in 0usize..3,
    ) {
        prop_assume!(side + 2 * pad >= k);
        let g = ConvGeometry::new(Shape3::square(side, c), FilterShape::new(k, c, 4), stride, pad);
        let out = g.output();
        let p = g.padded_input();
        let last_y = (out.h - 1) * stride + k;
        let last_x = (out.w - 1) * stride + k;
        prop_assert!(last_y <= p.h);
        prop_assert!(last_x <= p.w);
        // And the next window would fall off the edge.
        prop_assert!(out.h * stride + k > p.h);
        prop_assert!(out.w * stride + k > p.w);
    }

    /// Depth-first buffer is never larger than width-first when W ≥ K·K
    /// (sufficient condition; the paper's W > K claim holds in all its nets).
    #[test]
    fn depth_first_buffer_smaller(side in 8usize..40, c in 1usize..64, k in 1usize..4) {
        prop_assume!(side >= k * k && side >= k);
        let g = ConvGeometry::new(Shape3::square(side, c), FilterShape::new(k, c, 8), 1, 0);
        prop_assert!(g.depth_first_buffer() <= g.width_first_buffer());
    }

    /// `copy_bitrange_from` is bit-identical to a scalar get/set loop for
    /// arbitrary offsets and lengths, and leaves every bit outside the
    /// target span untouched (the packed conv window extractor relies on
    /// both properties).
    #[test]
    fn copy_bitrange_matches_scalar_reference(
        src_bits in qnn_testkit::vec(any::<bool>(), 1..400),
        dst_len in 1usize..400,
        src_off in 0usize..400,
        dst_off in 0usize..400,
        len in 0usize..400,
    ) {
        let src = BitVec::from_bools(&src_bits);
        let len = len.min(src.len()).min(dst_len);
        let src_off = src_off.min(src.len() - len);
        let dst_off = dst_off.min(dst_len - len);
        let dst_bits: Vec<bool> =
            (0..dst_len).map(|i| src_bits[(i * 7 + 3) % src_bits.len()] ^ (i % 5 == 0)).collect();
        let mut dst = BitVec::from_bools(&dst_bits);
        let mut expect = dst.clone();
        for i in 0..len {
            expect.set(dst_off + i, src.get(src_off + i));
        }
        dst.copy_bitrange_from(dst_off, &src, src_off, len);
        prop_assert_eq!(&dst, &expect);
    }

    /// `popcount_range` equals the scalar count over the same span.
    #[test]
    fn popcount_range_matches_scalar_reference(
        bits in qnn_testkit::vec(any::<bool>(), 1..400),
        off in 0usize..400,
        len in 0usize..400,
    ) {
        let v = BitVec::from_bools(&bits);
        let len = len.min(v.len());
        let off = off.min(v.len() - len);
        let expect = (0..len).filter(|&i| v.get(off + i)).count() as u32;
        prop_assert_eq!(v.popcount_range(off, len), expect);
    }
}
