//! A tiny wall-clock bench runner for `harness = false` benches.
//!
//! Criterion replacement scaled to what this repo's benches need: warmup,
//! N timed iterations, median and p95 printed in a stable one-line format
//! so runs diff cleanly. Not a statistical framework — the simulated
//! workloads here differ by orders of magnitude, and median/p95 over ~15
//! iterations resolves that fine.
//!
//! Environment knobs: `QNN_BENCH_WARMUP` (default 3 iterations),
//! `QNN_BENCH_ITERS` (default 15), and `QNN_BENCH_QUICK=1` — smoke mode
//! (`./ci.sh bench-smoke`): no warmup, one iteration, and benches are
//! expected to gate their speedup/ratio assertions on
//! [`Bench::quick_mode`], since a single unwarmed iteration measures
//! nothing.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn env_usize(name: &str, default: usize) -> usize {
    match std::env::var(name) {
        Ok(v) => v.trim().parse().unwrap_or_else(|_| panic!("{name}={v:?} is not a usize")),
        Err(_) => default,
    }
}

/// Format a duration with a unit that keeps 3–4 significant digits.
fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Measurements of one benchmark: sorted per-iteration wall times.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Benchmark name as printed.
    pub name: String,
    /// Per-iteration wall-clock times, ascending.
    pub sorted: Vec<Duration>,
}

impl Measurement {
    /// Median iteration time.
    pub fn median(&self) -> Duration {
        let n = self.sorted.len();
        if n % 2 == 1 {
            self.sorted[n / 2]
        } else {
            (self.sorted[n / 2 - 1] + self.sorted[n / 2]) / 2
        }
    }

    /// 95th-percentile iteration time (nearest-rank).
    pub fn p95(&self) -> Duration {
        let n = self.sorted.len();
        let rank = (n * 95).div_ceil(100).max(1);
        self.sorted[rank - 1]
    }
}

/// Wall-clock bench runner; construct once per bench binary.
pub struct Bench {
    warmup: usize,
    iters: usize,
}

impl Default for Bench {
    fn default() -> Self {
        Self::from_env()
    }
}

impl Bench {
    /// Runner configured from `QNN_BENCH_WARMUP` / `QNN_BENCH_ITERS`; in
    /// quick mode both collapse to a single cold iteration.
    pub fn from_env() -> Self {
        if Self::quick_mode() {
            return Self { warmup: 0, iters: 1 };
        }
        Self {
            warmup: env_usize("QNN_BENCH_WARMUP", 3),
            iters: env_usize("QNN_BENCH_ITERS", 15).max(1),
        }
    }

    /// True when `QNN_BENCH_QUICK=1`: the bench should execute every
    /// workload once (exercising the harness end to end) but skip
    /// performance assertions.
    pub fn quick_mode() -> bool {
        std::env::var("QNN_BENCH_QUICK").is_ok_and(|v| v.trim() == "1")
    }

    /// Override iteration counts (used by slow simulation benches).
    /// Ignored in quick mode, which pins a single cold iteration.
    pub fn with_iters(mut self, warmup: usize, iters: usize) -> Self {
        if Self::quick_mode() {
            return self;
        }
        self.warmup = warmup;
        self.iters = iters.max(1);
        self
    }

    /// Time `f`, print `name  median …  p95 …`, and return the samples.
    pub fn run<T>(&self, name: &str, mut f: impl FnMut() -> T) -> Measurement {
        for _ in 0..self.warmup {
            black_box(f());
        }
        let mut samples = Vec::with_capacity(self.iters);
        for _ in 0..self.iters {
            let t0 = Instant::now();
            black_box(f());
            samples.push(t0.elapsed());
        }
        samples.sort_unstable();
        let m = Measurement { name: name.to_string(), sorted: samples };
        println!(
            "bench {:<44} median {:>10}   p95 {:>10}   ({} iters)",
            m.name,
            fmt_duration(m.median()),
            fmt_duration(m.p95()),
            self.iters
        );
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_p95_of_known_samples() {
        let m = Measurement {
            name: "t".into(),
            sorted: (1..=20).map(Duration::from_micros).collect(),
        };
        assert_eq!(m.median(), Duration::from_nanos(10_500));
        assert_eq!(m.p95(), Duration::from_micros(19));
    }

    #[test]
    fn run_collects_requested_iterations() {
        let bench = Bench::from_env().with_iters(0, 5);
        let mut calls = 0u32;
        let m = bench.run("counting", || calls += 1);
        assert_eq!(m.sorted.len(), 5);
        assert_eq!(calls, 5);
    }

    #[test]
    fn duration_formatting_picks_sane_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(123)), "123 ns");
        assert_eq!(fmt_duration(Duration::from_micros(123)), "123.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(123)), "123.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(12)), "12.00 s");
    }
}
