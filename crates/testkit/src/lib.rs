//! `qnn-testkit` — hermetic, std-only test infrastructure for the
//! streaming-QNN reproduction.
//!
//! The workspace's hermetic-build policy (README "Hermetic builds") bans
//! external crates: tier-1 verification must succeed on a network-isolated
//! machine, from a clean checkout, with bit-identical results across runs.
//! This crate supplies the three things the suite previously pulled from
//! crates.io:
//!
//! * [`Rng`] — a deterministic xoshiro256** PRNG (replaces `rand`), used
//!   both by tests and by seeded parameter/image generation in `qnn-nn`
//!   and `qnn-data`;
//! * [`prop`] + the [`props!`] macro — a seeded property-testing harness
//!   with shrink-on-failure (replaces `proptest`), tuned via
//!   `QNN_TEST_SEED` / `QNN_TEST_CASES`;
//! * [`bench`] — a wall-clock warmup/iterate/median/p95 runner for the
//!   `harness = false` benches (replaces `criterion`).

pub mod bench;
pub mod prop;
pub mod rng;

pub use bench::{black_box, Bench};
pub use prop::{any, map, vec, Strategy};
pub use rng::{splitmix64, Rng};
