//! A minimal property-testing harness (proptest-shaped, std-only).
//!
//! Design goals, in order:
//!
//! 1. **Hermetic** — no crates.io dependency; works on a network-isolated
//!    machine.
//! 2. **Deterministic** — every case derives from a base seed mixed with
//!    the test name and case index. A failure report prints the base seed
//!    and the failing case, and `QNN_TEST_SEED=<seed>` reproduces the
//!    exact run.
//! 3. **Mechanical porting** — the [`props!`](crate::props) macro accepts
//!    `name(arg in strategy, ...) { body }` blocks whose bodies use
//!    `prop_assert!` / `prop_assert_eq!` / `prop_assume!` and may
//!    `return Ok(());`, exactly like the `proptest!` suites this replaced.
//!
//! Environment knobs:
//!
//! * `QNN_TEST_CASES` — cases per property (default 64; per-property
//!   overrides via `#![cases = N]` in the macro lose to the env var).
//! * `QNN_TEST_SEED` — base seed (decimal or `0x…` hex).

use crate::rng::{splitmix64, Rng};
use std::cell::Cell;
use std::fmt::Debug;
use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

/// Default cases per property (the acceptance floor for the repro suites).
pub const DEFAULT_CASES: u32 = 64;
/// Default base seed: any fixed value works; this one is arbitrary.
pub const DEFAULT_SEED: u64 = 0x51EA_D5EE_DC0F_FEE5;
/// Cap on greedy shrink steps (each step re-runs the property once per
/// candidate, so the worst case is bounded and fast).
const MAX_SHRINK_STEPS: u32 = 1024;
/// Retry budget multiplier for `prop_assume!` rejections.
const REJECT_FACTOR: u32 = 64;

/// Why a single case did not pass.
#[derive(Debug)]
pub enum CaseError {
    /// The property is false for this input (assertion text + location).
    Fail(String),
    /// The input does not satisfy a `prop_assume!` precondition; the case
    /// is discarded and regenerated, not counted as a failure.
    Reject(&'static str),
}

/// Result type the property bodies produce.
pub type CaseResult = Result<(), CaseError>;

/// A generator of test inputs with optional shrinking.
pub trait Strategy {
    /// The generated input type.
    type Value: Clone + Debug + PartialEq;

    /// Draw one input.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Candidate simplifications of a failing input, simplest first.
    /// Default: no shrinking.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Keep only inputs satisfying `pred`; `reason` labels rejections.
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, reason, pred }
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut Rng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let lo = self.start;
                let v = *value;
                let mut out = Vec::new();
                if v != lo {
                    out.push(lo);
                    let mid = lo + (v - lo) / 2;
                    if mid != lo && mid != v {
                        out.push(mid);
                    }
                    let prev = v - 1;
                    if prev != lo && !out.contains(&prev) {
                        out.push(prev);
                    }
                }
                out
            }
        }
    )+};
}

impl_int_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut Rng) -> f32 {
        rng.gen_range(self.clone())
    }

    fn shrink(&self, value: &f32) -> Vec<f32> {
        // Toward the low bound, then toward zero if it is in range.
        let mut out = Vec::new();
        for cand in [self.start, (self.start + value) / 2.0, 0.0] {
            if cand != *value && self.contains(&cand) && !out.contains(&cand) {
                out.push(cand);
            }
        }
        out
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut Rng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// Strategy for "any value of `T`" — see [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// `any::<T>()` — the full domain of `T` (uniform).
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any { _marker: std::marker::PhantomData }
}

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut Rng) -> bool {
        rng.next_u64() & 1 == 1
    }

    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value { vec![false] } else { Vec::new() }
    }
}

macro_rules! impl_any_uint {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut Rng) -> $t {
                rng.next_u64() as $t
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let v = *value;
                let mut out = Vec::new();
                if v != 0 {
                    out.push(0);
                    if v / 2 != 0 {
                        out.push(v / 2);
                    }
                }
                out
            }
        }
    )+};
}

impl_any_uint!(u8, u16, u32, u64, usize);

/// `vec(element, len_range)` — a `Vec` with length drawn from `len_range`
/// and elements from `element` (mirrors `proptest::collection::vec`).
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

/// See [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut Rng) -> Self::Value {
        let n = rng.gen_range(self.len.clone());
        (0..n).map(|_| self.element.generate(rng)).collect()
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        // Shorter prefixes first (halving), as long as they stay in range.
        for target in [self.len.start, value.len() / 2, value.len().saturating_sub(1)] {
            if target < value.len() && self.len.contains(&target) {
                let cand: Vec<_> = value[..target].to_vec();
                if !out.contains(&cand) {
                    out.push(cand);
                }
            }
        }
        // Element-wise shrinks only for short vectors (cost control).
        if value.len() <= 16 {
            for (i, v) in value.iter().enumerate() {
                for s in self.element.shrink(v) {
                    let mut cand = value.clone();
                    cand[i] = s;
                    if !out.contains(&cand) {
                        out.push(cand);
                    }
                }
            }
        }
        out
    }
}

/// `map(inner, f, inv)` — generate by applying `f` to `inner`'s values,
/// shrink *through* the mapping: a failing mapped value is inverted back
/// into the inner domain with `inv`, shrunk there, and re-mapped.
///
/// Plain proptest-style `map` loses shrinking because the mapped domain
/// has no strategy to ask for candidates; supplying the (partial) inverse
/// restores it. `inv` may return `None` for values it cannot invert
/// (e.g. a constructor that rejected the parameters) — those simply don't
/// shrink. The composite generators in the end-to-end property suites
/// (random network specs built from geometry tuples) use this so that a
/// failing spec minimizes toward small sides/kernels/channels instead of
/// being frozen at whatever geometry first failed.
pub fn map<S, T, F, I>(inner: S, f: F, inv: I) -> Map<S, F, I>
where
    S: Strategy,
    T: Clone + Debug + PartialEq,
    F: Fn(S::Value) -> T,
    I: Fn(&T) -> Option<S::Value>,
{
    Map { inner, f, inv }
}

/// See [`map`].
#[derive(Clone, Debug)]
pub struct Map<S, F, I> {
    inner: S,
    f: F,
    inv: I,
}

impl<S, T, F, I> Strategy for Map<S, F, I>
where
    S: Strategy,
    T: Clone + Debug + PartialEq,
    F: Fn(S::Value) -> T,
    I: Fn(&T) -> Option<S::Value>,
{
    type Value = T;

    fn generate(&self, rng: &mut Rng) -> T {
        (self.f)(self.inner.generate(rng))
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        let Some(source) = (self.inv)(value) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for cand in self.inner.shrink(&source) {
            let mapped = (self.f)(cand);
            if mapped != *value && !out.contains(&mapped) {
                out.push(mapped);
            }
        }
        out
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut Rng) -> Self::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 1000 consecutive draws", self.reason);
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        self.inner.shrink(value).into_iter().filter(|v| (self.pred)(v)).collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for s in self.$idx.shrink(&value.$idx) {
                        let mut cand = value.clone();
                        cand.$idx = s;
                        out.push(cand);
                    }
                )+
                out
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A / 0)
    (A / 0, B / 1)
    (A / 0, B / 1, C / 2)
    (A / 0, B / 1, C / 2, D / 3)
    (A / 0, B / 1, C / 2, D / 3, E / 4)
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5)
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6)
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7)
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7, I / 8)
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7, I / 8, J / 9)
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7, I / 8, J / 9, K / 10)
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7, I / 8, J / 9, K / 10, L / 11)
);

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

thread_local! {
    static QUIET_PANICS: Cell<bool> = const { Cell::new(false) };
}

/// Install (once) a panic hook that suppresses printing while the runner
/// probes candidate inputs — shrinking re-runs the failing body dozens of
/// times and the default hook would flood the output. The final, reported
/// failure panics with the hook un-suppressed.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("{name}={raw:?} is not a u64"),
    }
}

/// FNV-1a over the test name, to give each property its own stream.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn case_rng(base_seed: u64, name_hash: u64, case: u32) -> Rng {
    let mut s = base_seed ^ name_hash;
    let a = splitmix64(&mut s);
    let mut s = a ^ u64::from(case);
    Rng::seed_from_u64(splitmix64(&mut s))
}

/// Run one case, translating panics inside the body into `Fail`.
fn run_case<V, F>(f: &F, value: V) -> CaseResult
where
    F: Fn(V) -> CaseResult,
{
    let was_quiet = QUIET_PANICS.with(|q| q.replace(true));
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| f(value)));
    QUIET_PANICS.with(|q| q.set(was_quiet));
    match outcome {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "panic with non-string payload".into());
            Err(CaseError::Fail(format!("panicked: {msg}")))
        }
    }
}

/// Execute `cases` seeded cases of the property `f` over inputs from
/// `strat`, shrinking on failure. Panics with a reproduction recipe on the
/// first (shrunk) counterexample. This is the engine behind
/// [`props!`](crate::props); call it directly for one-off properties.
pub fn run<S, F>(name: &str, cases_override: Option<u32>, strat: S, f: F)
where
    S: Strategy,
    F: Fn(S::Value) -> CaseResult,
{
    install_quiet_hook();
    let base_seed = env_u64("QNN_TEST_SEED").unwrap_or(DEFAULT_SEED);
    let cases = env_u64("QNN_TEST_CASES")
        .map(|v| u32::try_from(v).expect("QNN_TEST_CASES too large"))
        .or(cases_override)
        .unwrap_or(DEFAULT_CASES);
    let name_hash = fnv1a(name);
    let max_rejects = cases.saturating_mul(REJECT_FACTOR);

    let mut rejects = 0u32;
    let mut case = 0u32;
    let mut executed = 0u32;
    while executed < cases {
        let mut rng = case_rng(base_seed, name_hash, case);
        case += 1;
        let value = strat.generate(&mut rng);
        match run_case(&f, value.clone()) {
            Ok(()) => executed += 1,
            Err(CaseError::Reject(reason)) => {
                rejects += 1;
                assert!(
                    rejects <= max_rejects,
                    "property '{name}': {rejects} rejections (last: '{reason}') \
                     exceeded the budget of {max_rejects}; loosen the \
                     prop_assume!/filter or widen the strategy"
                );
            }
            Err(CaseError::Fail(first_msg)) => {
                let (shrunk, final_msg, steps) = shrink_failure(&strat, &f, value.clone(), first_msg);
                panic!(
                    "property '{name}' falsified\n\
                     \x20 case index : {idx} (of {cases} requested)\n\
                     \x20 base seed  : {base_seed:#018x}\n\
                     \x20 original   : {value:?}\n\
                     \x20 shrunk     : {shrunk:?}  ({steps} shrink steps)\n\
                     \x20 error      : {final_msg}\n\
                     reproduce with: QNN_TEST_SEED={base_seed:#x} \
                     QNN_TEST_CASES={cases} cargo test -q {name}",
                    idx = case - 1,
                );
            }
        }
    }
}

/// Greedy shrink: repeatedly adopt the first simpler candidate that still
/// fails, until no candidate fails or the step budget runs out.
fn shrink_failure<S, F>(
    strat: &S,
    f: &F,
    mut current: S::Value,
    mut msg: String,
    // Returns (shrunk value, its failure message, steps taken).
) -> (S::Value, String, u32)
where
    S: Strategy,
    F: Fn(S::Value) -> CaseResult,
{
    let mut steps = 0u32;
    'outer: while steps < MAX_SHRINK_STEPS {
        for cand in strat.shrink(&current) {
            if cand == current {
                continue;
            }
            if let Err(CaseError::Fail(m)) = run_case(f, cand.clone()) {
                current = cand;
                msg = m;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (current, msg, steps)
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Assert inside a property body; fails the case (triggering shrinking)
/// instead of aborting the whole runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::prop::CaseError::Fail(format!(
                "{} at {}:{}",
                format_args!($($fmt)*),
                file!(),
                line!()
            )));
        }
    };
}

/// `assert_eq!` for property bodies (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?} ({})",
            l,
            r,
            format_args!($($fmt)*)
        );
    }};
}

/// `assert_ne!` for property bodies (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Discard the current case when a precondition does not hold; the runner
/// draws a replacement (bounded by the rejection budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::prop::CaseError::Reject(stringify!(
                $cond
            )));
        }
    };
}

/// Define property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a function running seeded cases with shrink-on-failure; mark it
/// `#[test]` (as the ported suites do) to hand it to the test harness.
///
/// ```
/// qnn_testkit::props! {
///     #![cases = 128] // optional; QNN_TEST_CASES env overrides
///     /// Attach `#[test]` here when inside a test module.
///     fn addition_commutes(a in 0i32..1000, b in 0i32..1000) {
///         qnn_testkit::prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes(); // 128 seeded cases
/// ```
#[macro_export]
macro_rules! props {
    ( #![cases = $cases:expr] $($rest:tt)* ) => {
        $crate::__props_impl! { ::std::option::Option::Some($cases); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__props_impl! { ::std::option::Option::None; $($rest)* }
    };
}

/// Implementation detail of [`props!`]; do not invoke directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __props_impl {
    (
        $cases:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases_override: Option<u32> = $cases;
                let strategy = ($($strat,)+);
                $crate::prop::run(
                    stringify!($name),
                    cases_override,
                    strategy,
                    |($($arg,)+)| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_range_shrinks_toward_start() {
        let s = 3usize..50;
        let cands = s.shrink(&40);
        assert!(cands.contains(&3));
        assert!(cands.iter().all(|&c| (3..40).contains(&c)));
        assert!(s.shrink(&3).is_empty());
    }

    #[test]
    fn tuple_shrinks_one_component_at_a_time() {
        let s = (1usize..10, 0i32..100);
        let cands = s.shrink(&(7, 50));
        assert!(cands.contains(&(1, 50)));
        assert!(cands.contains(&(7, 0)));
        assert!(!cands.contains(&(1, 0)), "must not shrink both at once");
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u32;
        // Count via a cell captured by the closure.
        let counter = std::cell::Cell::new(0u32);
        run("tk_passing", Some(32), (0u32..10,), |(_v,)| {
            counter.set(counter.get() + 1);
            Ok(())
        });
        count += counter.get();
        assert_eq!(count, 32);
    }

    #[test]
    fn failing_property_shrinks_to_minimum() {
        let report = panic::catch_unwind(|| {
            run("tk_failing", Some(64), (0u64..1000,), |(v,)| {
                crate::prop_assert!(v < 200, "too big: {v}");
                Ok(())
            });
        })
        .expect_err("must fail");
        let msg = report.downcast_ref::<String>().expect("string panic");
        // Greedy shrink on `v >= 200` must land exactly on 200.
        assert!(msg.contains("shrunk     : (200,)"), "report was:\n{msg}");
        assert!(msg.contains("QNN_TEST_SEED="), "report was:\n{msg}");
    }

    #[test]
    fn panicking_body_is_caught_and_shrunk() {
        let report = panic::catch_unwind(|| {
            run("tk_panicking", Some(64), (0i32..100,), |(v,)| {
                assert!(v < 30, "plain assert, not prop_assert: {v}");
                Ok(())
            });
        })
        .expect_err("must fail");
        let msg = report.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("shrunk     : (30,)"), "report was:\n{msg}");
    }

    #[test]
    fn rejection_budget_is_enforced() {
        let report = panic::catch_unwind(|| {
            run("tk_rejecting", Some(4), (0u32..10,), |(_v,)| {
                Err(CaseError::Reject("always"))
            });
        })
        .expect_err("must exhaust rejections");
        let msg = report.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("rejections"), "report was:\n{msg}");
    }

    #[test]
    fn map_generates_through_the_function() {
        run(
            "tk_map_gen",
            Some(64),
            (map(0u32..10, |v| v * 2 + 1, |t: &u32| Some((t - 1) / 2)),),
            |(v,)| {
                crate::prop_assert!(v % 2 == 1 && v < 21);
                Ok(())
            },
        );
    }

    #[test]
    fn map_shrinks_through_the_inverse() {
        // Property fails for mapped values >= 800, i.e. inner >= 400.
        // Inverse-aware shrinking must walk the inner domain down to the
        // boundary and land exactly on 800.
        let report = panic::catch_unwind(|| {
            run(
                "tk_map_shrink",
                Some(64),
                (map(0u64..1000, |v| v * 2, |t: &u64| Some(t / 2)),),
                |(v,)| {
                    crate::prop_assert!(v < 800, "too big: {v}");
                    Ok(())
                },
            );
        })
        .expect_err("must fail");
        let msg = report.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("shrunk     : (800,)"), "report was:\n{msg}");
    }

    #[test]
    fn unmappable_values_do_not_shrink() {
        let s = map(0u32..100, |v| v + 1, |_t: &u32| None::<u32>);
        assert!(s.shrink(&50).is_empty());
        // And with a working inverse the candidates pass back through f.
        let s = map(0u32..100, |v| v + 1, |t: &u32| t.checked_sub(1));
        let cands = s.shrink(&51);
        assert!(cands.contains(&1), "inner 50 -> 0 -> mapped 1, got {cands:?}");
        assert!(!cands.contains(&51));
    }

    #[test]
    fn filter_keeps_only_matching_values() {
        run("tk_filter", Some(64), ((-8i32..8).prop_filter("nonzero", |v| *v != 0),), |(v,)| {
            crate::prop_assert!(v != 0);
            Ok(())
        });
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        run("tk_vec", Some(64), (vec(any::<bool>(), 1..30),), |(v,)| {
            crate::prop_assert!(!v.is_empty() && v.len() < 30);
            Ok(())
        });
    }

    props! {
        #![cases = 16]
        #[test]
        fn props_macro_compiles_and_runs(a in 0u8..20, flip in any::<bool>()) {
            let b = if flip { a } else { 0 };
            crate::prop_assert!(b <= a);
        }
    }
}
