//! Deterministic PRNG: xoshiro256** seeded through SplitMix64.
//!
//! This is the workspace's only randomness source. It exists so the repro
//! is hermetic (no `rand` crate, no registry access) and bit-reproducible:
//! the same seed yields the same parameter tensors, images, and property
//! cases on every platform, forever. The generator is the public-domain
//! xoshiro256** of Blackman & Vigna; state initialization runs the seed
//! through SplitMix64 as its authors recommend, so small or correlated
//! seeds (0, 1, 2, …) still produce decorrelated streams.

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step — used for seeding and for cheap stateless hashing.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic xoshiro256** generator.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seed via SplitMix64 expansion (the xoshiro authors' recommendation).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next raw 32-bit output (upper half of `next_u64`).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform `u64` below `bound` (> 0), by widening multiply rejection
    /// (Lemire's method) — unbiased and branch-cheap.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
            // Rejected: retry with fresh bits (rare unless bound ≈ 2⁶⁴).
        }
    }

    /// Uniform sample from a half-open or inclusive range; mirrors
    /// `rand::Rng::gen_range` so call sites port with only an import edit.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fill a byte slice with uniform bytes.
    pub fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// A range that [`Rng::gen_range`] can sample uniformly.
pub trait SampleRange {
    /// The sampled element type.
    type Output;
    /// Draw one uniform sample.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),+ $(,)?) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(rng.below(span) as $wide) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as $wide).wrapping_add(rng.below(span + 1) as $wide) as $t
            }
        }
    )+};
}

impl_int_range!(
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
);

impl SampleRange for Range<f32> {
    type Output = f32;
    #[inline]
    fn sample(self, rng: &mut Rng) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + rng.next_f32() * (self.end - self.start)
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(0);
        let mut b = Rng::seed_from_u64(1);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(-5i32..17);
            assert!((-5..17).contains(&v));
            let w = r.gen_range(-127i8..=127);
            assert!((-127..=127).contains(&w));
            let f = r.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = r.gen_range(3usize..4);
            assert_eq!(u, 3);
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut r = Rng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Rng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.15)).count();
        assert!((1200..1800).contains(&hits), "p=0.15 gave {hits}/10000");
    }

    #[test]
    fn full_u64_inclusive_range_works() {
        let mut r = Rng::seed_from_u64(5);
        // Must not hang or panic on the span-overflow path.
        let v = r.gen_range(0u64..=u64::MAX);
        let _ = v;
    }

    #[test]
    fn fill_is_deterministic() {
        let mut a = [0u8; 13];
        let mut b = [0u8; 13];
        Rng::seed_from_u64(11).fill(&mut a);
        Rng::seed_from_u64(11).fill(&mut b);
        assert_eq!(a, b);
        assert!(a.iter().any(|&x| x != 0));
    }

    #[test]
    fn uniformity_chi_square_sanity() {
        // 16 buckets over u64 — loose bound, catches gross bias only.
        let mut r = Rng::seed_from_u64(1234);
        let mut buckets = [0u32; 16];
        let n = 64_000;
        for _ in 0..n {
            buckets[(r.next_u64() >> 60) as usize] += 1;
        }
        let expect = (n / 16) as f64;
        let chi2: f64 =
            buckets.iter().map(|&c| (c as f64 - expect).powi(2) / expect).sum();
        assert!(chi2 < 50.0, "chi² = {chi2} over 15 dof");
    }
}
