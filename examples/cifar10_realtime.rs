//! CIFAR-10 real-time classification on one DFE — the Table IV scenario.
//!
//! Runs the VGG-like (CNV) network at 32×32 through the cycle simulator,
//! reports per-image latency/fps/power/energy, and compares against the
//! FINN reference column and the GPU baseline models.
//!
//! ```text
//! cargo run --release --example cifar10_realtime
//! ```

use qnn::compiler::{partition, run_images, CompileOptions};
use qnn::data::CIFAR10;
use qnn::dfe::{MaxRing, MAIA_FCLK_MHZ, STRATIX_V_5SGSD8};
use qnn::hw::specs::FINN_CNV_CIFAR10;
use qnn::hw::{dfe_power_watts, energy_joules, estimate_network, gpu_power_watts, GpuModel, P100};
use qnn::nn::{models, Network};

fn main() {
    let spec = models::vgg_like(32, 10, 2);
    let p = partition(&spec, &STRATIX_V_5SGSD8, &MaxRing::default()).expect("partition");
    println!("{} fits on {} DFE(s)", spec.name, p.num_dfes());

    let net = Network::random(spec.clone(), 7);
    let n = 4;
    let images = CIFAR10.images(n);
    println!("streaming {n} CIFAR-10-shaped images through the DFE...");
    let sim = run_images(&net, &images, &CompileOptions::default()).expect("sim");
    for i in 0..n {
        println!("  image {i}: class {}", sim.argmax(i));
    }

    let per_image_cycles = sim.cycles() as f64 / n as f64;
    let ms = per_image_cycles / (MAIA_FCLK_MHZ * 1e3);
    let fps = 1000.0 / ms;
    let usage = estimate_network(&spec, p.num_dfes()).total;
    let power = dfe_power_watts(usage, p.num_dfes(), &STRATIX_V_5SGSD8, MAIA_FCLK_MHZ).total();
    let energy = energy_joules(power, ms);

    println!("\nDFE:  {ms:.3} ms/image  ({fps:.0} fps)  {power:.1} W  {energy:.4} J/image");
    println!(
        "FINN: {:.4} ms/image            {:.1} W  {:.5} J/image   (published, Table IV)",
        FINN_CNV_CIFAR10.time_ms,
        FINN_CNV_CIFAR10.power_w,
        energy_joules(FINN_CNV_CIFAR10.power_w, FINN_CNV_CIFAR10.time_ms)
    );
    let gpu = GpuModel::new(P100);
    let gpu_ms = gpu.time_ms(&spec);
    let gpu_w = gpu_power_watts(&P100);
    println!(
        "P100: {gpu_ms:.3} ms/image            {gpu_w:.0} W   {:.4} J/image   (baseline model)",
        energy_joules(gpu_w, gpu_ms)
    );
    assert!(fps > 60.0, "real-time requirement (§V) not met");
    println!("\nreal-time requirement met: {fps:.0} fps > 60 fps");
}
