//! Cluster serving over loopback TCP: a sharding router in front of two
//! network edges, with replica autoscalers relieving saturation mid-run.
//!
//! Two backend servers each host the same two models behind a
//! `qnn_cluster::NetServer` TCP edge. A `Router` consistent-hashes model
//! names across the edges (spilling when a shard saturates), while each
//! backend runs an `Autoscaler` control loop that grows a pool the moment
//! its backlog breaches the control law — visibly, in the middle of the
//! flood. Every response that comes back over the wire is checked
//! bit-for-bit against the reference interpreter.
//!
//! ```text
//! cargo run --release --example cluster
//! ```

use qnn::cluster::{
    Autoscaler, AutoscalerConfig, Backend, NetClient, NetServer, Router, RouterConfig,
};
use qnn::data::CIFAR10;
use qnn::nn::{models, Network};
use qnn::serve::{ModelOptions, Priority, Server, ServerConfig, SubmitOptions};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

fn main() {
    let cnv = Network::random(models::test_net(32, 10, 2), 7);
    let small = Network::random(models::test_net(32, 10, 4), 9);
    let images = CIFAR10.images(16);

    // Each backend: single-replica pools, with a synthetic service time on
    // `cnv` so a flood builds a visible backlog on any host.
    let backend = || {
        Server::builder()
            .config(ServerConfig { max_batch: 2, ..ServerConfig::default() })
            .model_with(
                "cnv",
                &cnv,
                ModelOptions::new().replicas(1).synthetic_delay(Duration::from_millis(25)),
            )
            .model_with("small", &small, ModelOptions::new().replicas(1))
            .start()
            .expect("valid server")
    };
    let edge_a = NetServer::bind(backend(), "127.0.0.1:0").expect("bind edge a");
    let edge_b = NetServer::bind(backend(), "127.0.0.1:0").expect("bind edge b");
    println!("edge a on {}, edge b on {}", edge_a.local_addr(), edge_b.local_addr());

    let router = Router::new(
        RouterConfig::builder().spill_threshold(6).build().expect("valid config"),
        vec![
            ("a".to_string(), Backend::Remote(NetClient::connect(edge_a.local_addr()).expect("connect a"))),
            ("b".to_string(), Backend::Remote(NetClient::connect(edge_b.local_addr()).expect("connect b"))),
        ],
    )
    .expect("valid router");
    println!("shard owner for cnv: {}, for small: {}", router.route("cnv").expect("routable"), router.route("small").expect("routable"));

    let scaler_config = AutoscalerConfig::builder()
        .min_replicas(1)
        .max_replicas(3)
        .backlog_per_replica(2)
        .interval(Duration::from_millis(15))
        .up_hysteresis(2)
        .down_hysteresis(50)
        .cooldown_ticks(2)
        .build()
        .expect("valid config");
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let stop = &stop;
        // One control loop per backend, each watching its own server.
        let scalers: Vec<_> = [&edge_a, &edge_b]
            .into_iter()
            .map(|edge| {
                let scaler = Autoscaler::new(scaler_config.clone(), edge.server());
                scope.spawn(move || scaler.run(edge.server(), stop))
            })
            .collect();

        // Flood interactive cnv traffic (three rounds over the image set)
        // plus a trickle of batch-class small traffic, all through the
        // router — it shards by model name and spills when a shard backs
        // up.
        let mut tickets = Vec::new();
        for round in 0..3 {
            for img in &images {
                let interactive = SubmitOptions::model("cnv").priority(Priority::Interactive);
                tickets.push(("cnv", router.submit(img.clone(), interactive).expect("routed")));
                if round == 0 {
                    tickets.push((
                        "small",
                        router.submit(img.clone(), SubmitOptions::model("small")).expect("routed"),
                    ));
                }
            }
        }

        // Router tickets resolve in any order; every response must match
        // the reference interpreter on one of the submitted images.
        let cnv_refs: Vec<Vec<i32>> = images.iter().map(|i| cnv.forward(i).logits).collect();
        let small_refs: Vec<Vec<i32>> = images.iter().map(|i| small.forward(i).logits).collect();
        for (model, ticket) in tickets {
            let resp = ticket.wait().expect("answered");
            let refs = if model == "cnv" { &cnv_refs } else { &small_refs };
            assert!(
                refs.contains(&resp.logits),
                "a {model} response diverged from the reference interpreter"
            );
        }

        // The flood is drained; pools scaled while it was in flight.
        for (name, edge) in [("a", &edge_a), ("b", &edge_b)] {
            let replicas = edge.server().load_window("cnv").expect("known model").replicas;
            println!("backend {name}: cnv pool now at {replicas} replica(s)");
        }
        stop.store(true, Ordering::Release);
        for (edge, handle) in ["a", "b"].into_iter().zip(scalers) {
            let actions = handle.join().expect("scaler thread");
            println!("backend {edge} autoscaler actions: {actions:?}");
        }
    });

    let report_a = edge_a.shutdown();
    let report_b = edge_b.shutdown();
    println!("\nbackend a:\n{}", report_a.render());
    println!("backend b:\n{}", report_b.render());
    println!("all responses bit-exact across sharding, spillover and scale-up");
}
