//! Full-size ResNet-18 at 224×224 (Table I / Table III scenario): compile,
//! partition onto Stratix V DFEs, run one ImageNet-shaped image through
//! the cycle simulator, and compare cycles/resources with the paper.
//!
//! This is the heaviest example (a full cycle-accurate 224×224 run):
//!
//! ```text
//! cargo run --release --example imagenet_resnet18
//! ```

use qnn::compiler::{partition, run_image};
use qnn::data::IMAGENET;
use qnn::dfe::{MaxRing, MAIA_FCLK_MHZ, STRATIX_V_5SGSD8};
use qnn::hw::specs::paper;
use qnn::hw::{estimate_network, CycleModel};
use qnn::nn::{models, Network};

fn main() {
    let spec = models::resnet18(1000);
    println!("{}: {} stages, {} skip connections, {:.1} Mbit of binary weights",
        spec.name, spec.stages.len(), spec.num_skip_connections(),
        spec.total_weight_bits() as f64 / 1e6);

    let p = partition(&spec, &STRATIX_V_5SGSD8, &MaxRing::default()).expect("partition");
    println!("partitioned onto {} DFEs (paper: 2-3)", p.num_dfes());
    let usage = estimate_network(&spec, p.num_dfes()).total;
    println!("estimated resources: {} LUT / {} FF / {} Kbit BRAM", usage.luts, usage.ffs, usage.bram_kbits);
    println!("paper Table III:     {} LUT / {} FF / {} Kbit BRAM",
        paper::RESNET18_LUT, paper::RESNET18_FF, paper::RESNET18_BRAM_KBITS);

    let model = CycleModel::analyze(&spec);
    println!("\nanalytic latency: {:.3e} cycles (paper estimate: {:.2e})",
        model.latency() as f64, paper::RESNET18_CLOCKS_ESTIMATE);
    println!("bottleneck layer: {} ({} busy cycles)", model.bottleneck().name, model.bottleneck().busy);

    println!("\nrunning one 224×224 image through the cycle simulator (~a minute)...");
    let net = Network::random(spec, 18);
    let img = IMAGENET.image(0);
    let sim = run_image(&net, &img).expect("sim");
    assert_eq!(sim.logits[0], net.forward(&img).logits, "bit-exactness");
    let ms = sim.cycles() as f64 / (MAIA_FCLK_MHZ * 1e3);
    println!("simulated: {} cycles = {ms:.1} ms at 105 MHz (paper measured: {} ms)",
        sim.cycles(), paper::RESNET18_TIME_MS);
    println!("predicted class: {}", sim.argmax(0));
}
