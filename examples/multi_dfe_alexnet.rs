//! AlexNet split across multiple DFEs with the threaded executor — the
//! paper's §III-B6 scale-out demonstration, shrunk to STL-sized inputs so
//! the multi-threaded cycle simulation completes quickly. Each device runs
//! in its own thread (its own clock domain) connected by MaxRing channel
//! links, and the result is bit-identical to a single-device run.
//!
//! ```text
//! cargo run --release --example multi_dfe_alexnet
//! ```

use qnn::compiler::{partition, run_images, CompileOptions};
use qnn::dfe::{MaxRing, STRATIX_V_5SGSD8};
use qnn::hw::estimate_network;
use qnn::nn::{models, Network};

fn main() {
    // Demonstrate the partitioner on the real AlexNet first.
    let alex = models::alexnet(1000);
    let p = partition(&alex, &STRATIX_V_5SGSD8, &MaxRing::default()).expect("partition");
    println!("AlexNet (224×224) partitions onto {} Stratix V DFEs:", p.num_dfes());
    for (d, u) in p.per_device.iter().enumerate() {
        println!("  DFE {d}: {:>7} LUT  {:>8} FF  {:>6} Kbit BRAM", u.luts, u.ffs, u.bram_kbits);
    }
    let cut_bw = MaxRing::demand_mbps(&[alex.act_bits], STRATIX_V_5SGSD8.fclk_mhz);
    println!("each MaxRing cut carries {cut_bw:.0} Mbps (link capacity: {} Gbps)\n",
        MaxRing::default().rate_gbps);

    // Now actually execute a scale-out: a VGG-like network forced across
    // three devices, threaded executor, verified against the reference.
    let spec = models::vgg_like(32, 10, 2);
    let n_stages = spec.stages.len();
    let stage_device: Vec<usize> = (0..n_stages).map(|i| (3 * i / n_stages).min(2)).collect();
    let net = Network::random(spec.clone(), 5);
    let images = qnn::data::CIFAR10.images(2);

    println!("running {} across 3 threaded device domains...", spec.name);
    let sim = run_images(
        &net,
        &images,
        &CompileOptions { stage_device: Some(stage_device), ..CompileOptions::default() },
    )
    .expect("multi-DFE run");
    for (i, img) in images.iter().enumerate() {
        assert_eq!(sim.logits[i], net.forward(img).logits, "image {i}");
        println!("  image {i}: class {} (bit-exact vs reference)", sim.argmax(i));
    }
    for (d, r) in sim.reports.iter().enumerate() {
        let busiest = r.bottleneck().expect("kernels");
        println!("  device {d}: {} local cycles, bottleneck {}", r.cycles, busiest.name);
    }
    let usage = estimate_network(&spec, 3).total;
    println!("\n3-DFE resource estimate: {usage:?}");
    println!("scale-out verified: multi-device result identical to reference.");
}
