//! Pipeline analysis: trace a streaming run and report per-kernel
//! utilization and buffer occupancy — the §IV-B2 bottleneck analysis done
//! with data instead of intuition.
//!
//! ```text
//! cargo run --release --example pipeline_analysis
//! ```

use qnn::compiler::{compile, CompileOptions};
use qnn::data::CIFAR10;
use qnn::nn::{models, Network};

fn main() {
    let spec = models::vgg_like(32, 10, 2);
    let net = Network::random(spec, 3);
    let images = CIFAR10.images(2);
    let compiled = compile(&net, &images, &CompileOptions::default());
    let mut graphs = compiled.graphs;
    assert_eq!(graphs.len(), 1, "single-DFE build expected");

    println!("tracing {} ({} kernels, {} streams)...", net.spec.name,
        graphs[0].num_kernels(), graphs[0].num_streams());
    let (report, trace) = graphs[0].run_traced(100_000_000, 1_000).expect("traced run");
    assert!(compiled.sink.is_complete());

    println!("run: {} cycles for 2 images ({:.3} ms/image at 105 MHz)\n",
        report.cycles, report.time_ms(105.0) / 2.0);

    println!("kernel utilization (busy fraction):");
    let mut rows: Vec<(String, f64, u64)> = report
        .kernels
        .iter()
        .map(|k| {
            let u = trace.mean_utilization(&k.name).unwrap_or(0.0);
            (k.name.clone(), u, k.stalled)
        })
        .collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (name, util, stalled) in rows.iter().take(12) {
        let bar = "#".repeat((util * 40.0) as usize);
        let pct = util * 100.0;
        println!("  {name:<18} {pct:>6.1}%  |{bar:<40}|  ({stalled} stall cycles)");
    }

    println!("\nbusiest streams (peak occupancy / capacity):");
    let mut occ: Vec<(&str, u32, usize)> = report
        .streams
        .iter()
        .map(|s| (s.name.as_str(), trace.peak_occupancy(&s.name).unwrap_or(0), s.capacity))
        .collect();
    occ.sort_by_key(|(_, peak, _)| std::cmp::Reverse(*peak));
    for (name, peak, cap) in occ.iter().take(8) {
        println!("  {name:<18} {peak:>6} / {cap}");
    }

    let b = report.bottleneck().expect("kernels exist");
    println!("\nbottleneck: {} ({} busy cycles) — compare §IV-B2's analysis.", b.name, b.busy);
    println!("\n(occupancy/utilization CSV available via Trace::occupancy_csv / utilization_csv)");
}
