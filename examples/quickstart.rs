//! Quickstart: build a small QNN, run it on the simulated DFE, and verify
//! against the reference interpreter.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use qnn::compiler::run_image;
use qnn::data::Dataset;
use qnn::hw::CycleModel;
use qnn::nn::{models, Network};

fn main() {
    // A compact network with every architectural feature of the paper:
    // fixed-point input conv, max pooling, two residual blocks with skip
    // connections (one downsampling), global average pooling and an FC
    // classifier — all with 1-bit weights and 2-bit activations.
    let spec = models::test_net(16, 10, 2);
    println!("network: {} ({} stages, {} binary weights)", spec.name, spec.stages.len(), spec.total_weight_bits());

    let net = Network::random(spec, 2024);
    let data = Dataset { name: "demo", side: 16, classes: 10 };
    let img = data.image(0);

    // Reference (layer-by-layer) inference.
    let reference = net.forward(&img);
    println!("reference logits: {:?}", reference.logits);

    // Streaming inference on the cycle-accurate DFE simulator.
    let sim = run_image(&net, &img).expect("simulation");
    println!("streaming logits: {:?}", sim.logits[0]);
    assert_eq!(sim.logits[0], reference.logits, "streaming must be bit-exact");

    let report = &sim.reports[0];
    println!("\ncycle-accurate run: {} cycles ({:.3} ms at 105 MHz)", report.cycles, report.time_ms(105.0));
    let bottleneck = report.bottleneck().expect("kernels exist");
    println!("bottleneck kernel: {} ({} busy cycles)", bottleneck.name, bottleneck.busy);

    let model = CycleModel::analyze(&net.spec);
    println!("analytic latency estimate: {} cycles", model.latency());
    println!("\npredicted class: {}", sim.argmax(0));
}
