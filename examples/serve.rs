//! Batch-parallel serving of CIFAR-10 traffic over replicated pipelines.
//!
//! Drives the VGG-like (CNV) network through the `qnn-serve` runtime at
//! 1, 2 and 4 replicas and prints the aggregate report for each: batch
//! occupancy, queue wait, p50/p95 latency and images/sec. The logits are
//! checked against the reference interpreter on every run, so the scaling
//! numbers are for bit-exact inference, not an approximation.
//!
//! ```text
//! cargo run --release --example serve
//! ```

use qnn::data::CIFAR10;
use qnn::nn::{models, Network};
use qnn::serve::{serve, ServerConfig, Ticket};

fn main() {
    let net = Network::random(models::vgg_like(32, 10, 2), 7);
    let images = CIFAR10.images(8);
    let expected: Vec<Vec<i32>> = images.iter().map(|i| net.forward(i).logits).collect();

    for replicas in [1usize, 2, 4] {
        let config = ServerConfig { replicas, max_batch: 2, ..ServerConfig::default() };
        let (responses, report) = serve(&net, &config, |client| {
            let tickets: Vec<Ticket> =
                images.iter().map(|i| client.submit(i.clone()).expect("admitted")).collect();
            tickets.into_iter().map(|t| t.wait().expect("answered")).collect::<Vec<_>>()
        });
        for (resp, want) in responses.iter().zip(&expected) {
            assert_eq!(&resp.logits, want, "request {} diverged from reference", resp.id);
        }
        println!("{}", report.render());
        println!();
    }
    println!("all {} responses bit-exact at every replica count", images.len());
}
