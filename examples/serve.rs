//! Multi-model serving of CIFAR-10 traffic with priorities and a hot
//! weight swap.
//!
//! Hosts two networks behind one `qnn_serve::Server` — the VGG-like (CNV)
//! model for latency-sensitive "interactive" traffic and a smaller model
//! for bulk "batch" traffic — then publishes new CNV weights mid-stream
//! and prints the aggregate report: per-model and per-class completed/shed
//! counts, batch occupancy, queue wait, p50/p95 latency and images/sec.
//! Every response is checked against the reference interpreter running the
//! exact weight version the response claims, so the numbers are for
//! bit-exact inference across the swap, not an approximation.
//!
//! ```text
//! cargo run --release --example serve
//! ```

use qnn::data::CIFAR10;
use qnn::nn::{models, Network};
use qnn::serve::{Priority, Server, ServerConfig, SubmitOptions, Ticket};

fn main() {
    let cnv_v0 = Network::random(models::vgg_like(32, 10, 2), 7);
    let cnv_v1 = Network::random(models::vgg_like(32, 10, 2), 8);
    let small = Network::random(models::test_net(32, 10, 2), 9);
    let images = CIFAR10.images(8);

    let config = ServerConfig::builder()
        .replicas(2)
        .max_batch(2)
        .build()
        .expect("valid config");
    let server = Server::builder()
        .config(config)
        .model("cnv", &cnv_v0)
        .model("small", &small)
        .start()
        .expect("valid server");
    let client = server.client();

    // Interleave interactive CNV traffic with bulk traffic to the small
    // model; halfway through, hot-swap the CNV weights. In-flight batches
    // finish on v0, later batches run bit-identically on v1.
    let mut tickets: Vec<Ticket> = Vec::new();
    for (i, img) in images.iter().enumerate() {
        if i == images.len() / 2 {
            let version =
                server.publish_weights("cnv", cnv_v1.clone()).expect("same architecture");
            println!("published cnv weight version {version} mid-stream\n");
        }
        let interactive =
            SubmitOptions::model("cnv").priority(Priority::Interactive);
        tickets.push(client.submit_with(img.clone(), interactive).expect("admitted"));
        tickets.push(
            client.submit_with(img.clone(), SubmitOptions::model("small")).expect("admitted"),
        );
    }

    for t in tickets {
        let resp = t.wait().expect("answered");
        let idx = (resp.id / 2) as usize;
        let reference = match (resp.model.as_str(), resp.stats.weight_version) {
            ("cnv", 0) => &cnv_v0,
            ("cnv", _) => &cnv_v1,
            _ => &small,
        };
        assert_eq!(
            resp.logits,
            reference.forward(&images[idx]).logits,
            "request {} diverged from reference weight version {}",
            resp.id,
            resp.stats.weight_version,
        );
    }

    let report = server.shutdown();
    println!("{}", report.render());
    println!("all {} responses bit-exact across the weight swap", 2 * images.len());
}
