//! Differential datapath battery: the pack-on-arrival / blocked-bit-GEMM
//! convolution busy path must be **bit-identical** to the scalar reference
//! datapath — same logits, same `CycleReport`s (cycle counts, per-kernel
//! busy/stall tallies, per-stream pushed/max-occupancy) — across randomized
//! networks, streamed-parameter loading, multi-device cuts, and both
//! schedulers.
//!
//! This is the proof obligation behind making `Packed` the default: every
//! golden vector, determinism test, and flaky-threshold band was calibrated
//! under the scalar datapath and must carry over unchanged. The argument is
//! structural — `tick`'s I/O decisions never consult the datapath, and the
//! per-filter arithmetic is the same `(2·agree − ones) << p` plane sum —
//! and this suite is the empirical check of that argument.
//!
//! Part of `./ci.sh soak` at `QNN_TEST_CASES=1024`.

use qnn::compiler::{run_images, CompileOptions};
use qnn::dfe::SchedulerMode;
use qnn::kernels::ConvDatapath;
use qnn::nn::specgen::spec_strategy;
use qnn::nn::{models, Network, NetworkSpec};
use qnn::tensor::Tensor3;
use qnn_testkit::{prop_assert_eq, props};

fn image_for(spec: &NetworkSpec, seed: u64) -> Tensor3<i8> {
    Tensor3::from_fn(spec.input, |y, x, c| {
        ((seed as usize)
            .wrapping_mul(37)
            .wrapping_add(y * 113 + x * 19 + c * 5)
            .wrapping_mul(2654435761)
            >> 16) as i8
    })
}

/// Run the same workload under both datapaths and assert logits and every
/// per-device report are identical.
fn assert_datapaths_agree(
    net: &Network,
    images: &[Tensor3<i8>],
    base: &CompileOptions,
) -> qnn_testkit::prop::CaseResult {
    let packed = run_images(
        net,
        images,
        &CompileOptions {
            conv_datapath: ConvDatapath::Packed,
            ..base.clone()
        },
    )
    .expect("packed run");
    let scalar = run_images(
        net,
        images,
        &CompileOptions {
            conv_datapath: ConvDatapath::ScalarReference,
            ..base.clone()
        },
    )
    .expect("scalar-reference run");
    prop_assert_eq!(&packed.logits, &scalar.logits);
    prop_assert_eq!(&packed.reports, &scalar.reports);
    Ok(())
}

props! {
    /// Single-device: random conv/pool/fc networks, 1–2 images, both
    /// schedulers, with the §III-B1a parameter-streaming path folded in —
    /// streamed loading swaps the filter bank *after* the plane rings are
    /// built, so it exercises the placeholder-filters path too.
    #[test]
    fn random_networks_datapaths_identical(
        spec in spec_strategy(),
        seed in 0u64..1000,
        n_images in 1usize..3,
        stream_params in 0u8..2,
        ready in 0u8..2,
    ) {
        let Some(spec) = spec else {
            return Ok(());
        };
        let net = Network::random(spec, seed);
        let images: Vec<_> =
            (0..n_images as u64).map(|i| image_for(&net.spec, seed + i)).collect();
        let base = CompileOptions {
            stream_parameters: stream_params == 1,
            scheduler: if ready == 1 {
                SchedulerMode::ReadyList
            } else {
                SchedulerMode::Dense
            },
            ..CompileOptions::default()
        };
        assert_datapaths_agree(&net, &images, &base)?;
    }

    /// Multi-device lockstep cuts: ring-channel backpressure interleaves
    /// with the conv kernels' latch/emit cadence differently than a single
    /// device, so report identity must hold across the cut too.
    #[test]
    fn multi_device_datapaths_identical(
        spec in spec_strategy(),
        seed in 0u64..1000,
        cut in 1usize..4,
    ) {
        let Some(spec) = spec else {
            return Ok(());
        };
        let stage_device: Vec<usize> =
            (0..spec.stages.len()).map(|i| usize::from(i >= cut)).collect();
        let net = Network::random(spec, seed);
        let img = image_for(&net.spec, seed);
        let base = CompileOptions {
            stage_device: Some(stage_device),
            ..CompileOptions::default()
        };
        assert_datapaths_agree(&net, std::slice::from_ref(&img), &base)?;
    }

    /// Residual networks under FIFO backpressure stress: split/add skip
    /// paths stall the conv kernels mid-emit, so precomputed accumulators
    /// must survive arbitrarily long write-blocked gaps.
    #[test]
    fn residual_nets_datapaths_identical_under_fifo_stress(
        seed in 0u64..200,
        fifo in 4usize..64,
    ) {
        let net = Network::random(models::test_net(8, 4, 2), seed);
        let img = image_for(&net.spec, seed + 3);
        let base = CompileOptions { fifo_capacity: fifo, ..CompileOptions::default() };
        assert_datapaths_agree(&net, std::slice::from_ref(&img), &base)?;
    }
}

/// Deterministic spot-check (not property-sized): exact cycle counts of a
/// full residual network are identical under both datapaths, so the
/// EXPERIMENTS flaky-threshold bands calibrated under the scalar datapath
/// carry over.
#[test]
fn cycle_counts_identical_on_residual_network() {
    let net = Network::random(models::test_net(16, 4, 2), 5);
    let img = image_for(&net.spec, 13);
    let run = |conv_datapath| {
        run_images(
            &net,
            std::slice::from_ref(&img),
            &CompileOptions {
                conv_datapath,
                ..CompileOptions::default()
            },
        )
        .expect("run")
    };
    let packed = run(ConvDatapath::Packed);
    let scalar = run(ConvDatapath::ScalarReference);
    assert_eq!(packed.logits, scalar.logits);
    assert_eq!(packed.reports, scalar.reports);
    assert!(packed.cycles() > 0);
}

/// `QNN_CONV_DATAPATH` is the documented selection mechanism; pin the
/// default when the variable is unset (mirrors the scheduler-mode test —
/// the parser itself is covered by its documented contract).
#[test]
fn conv_datapath_env_default_is_packed() {
    if std::env::var("QNN_CONV_DATAPATH").is_err() {
        assert_eq!(ConvDatapath::default(), ConvDatapath::Packed);
    }
}
