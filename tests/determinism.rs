//! Executor determinism: the lockstep multi-DFE executor is a pure
//! function of the compiled graphs. Ten runs of the same (network, images,
//! placement) must produce bit-identical logits *and* bit-identical
//! [`CycleReport`]s — cycle totals, per-kernel busy/stall tallies, and
//! per-stream high-water marks included. This is what makes cycle counts
//! citable as reproduction results and regressions diffable.

use qnn::compiler::{run_images, CompileOptions, SimResult};
use qnn::nn::{models, Network};
use qnn::tensor::{Shape3, Tensor3};
use qnn_testkit::Rng;

const RUNS: usize = 10;

fn image(side: usize, seed: u64) -> Tensor3<i8> {
    let mut rng = Rng::seed_from_u64(seed);
    Tensor3::from_fn(Shape3::square(side, 3), |_, _, _| rng.gen_range(-127i8..=127))
}

fn assert_identical_runs(runs: &[SimResult]) {
    let first = &runs[0];
    for (i, r) in runs.iter().enumerate().skip(1) {
        assert_eq!(r.logits, first.logits, "run {i}: logits diverged");
        assert_eq!(
            r.reports.len(),
            first.reports.len(),
            "run {i}: device count diverged"
        );
        for (d, (got, want)) in r.reports.iter().zip(&first.reports).enumerate() {
            assert_eq!(got.cycles, want.cycles, "run {i}: device {d} cycle count diverged");
            assert_eq!(got, want, "run {i}: device {d} full cycle report diverged");
        }
    }
}

#[test]
fn threaded_two_device_executor_is_deterministic_over_10_runs() {
    let spec = models::test_net(8, 4, 2);
    let cut = spec.stages.len() / 2;
    let stage_device: Vec<usize> =
        (0..spec.stages.len()).map(|i| usize::from(i >= cut)).collect();
    let net = Network::random(spec, 77);
    let imgs = vec![image(8, 1), image(8, 2)];
    let opts = CompileOptions { stage_device: Some(stage_device), ..CompileOptions::default() };

    let runs: Vec<SimResult> = (0..RUNS)
        .map(|i| run_images(&net, &imgs, &opts).unwrap_or_else(|e| panic!("run {i}: {e}")))
        .collect();
    assert_eq!(runs[0].reports.len(), 2, "expected a two-device split");
    assert_identical_runs(&runs);
}

#[test]
fn three_device_executor_is_deterministic_over_10_runs() {
    let spec = models::test_net(12, 5, 2);
    let n = spec.stages.len();
    let stage_device: Vec<usize> = (0..n).map(|i| (3 * i / n).min(2)).collect();
    let net = Network::random(spec, 78);
    let imgs = vec![image(12, 3)];
    let opts = CompileOptions { stage_device: Some(stage_device), ..CompileOptions::default() };

    let runs: Vec<SimResult> = (0..RUNS)
        .map(|i| run_images(&net, &imgs, &opts).unwrap_or_else(|e| panic!("run {i}: {e}")))
        .collect();
    assert_eq!(runs[0].reports.len(), 3, "expected a three-device split");
    assert_identical_runs(&runs);
}

#[test]
fn single_device_executor_is_deterministic_over_10_runs() {
    let net = Network::random(models::test_net(8, 4, 2), 79);
    let imgs = vec![image(8, 4)];

    let runs: Vec<SimResult> = (0..RUNS)
        .map(|i| {
            run_images(&net, &imgs, &CompileOptions::default())
                .unwrap_or_else(|e| panic!("run {i}: {e}"))
        })
        .collect();
    assert_identical_runs(&runs);
}
