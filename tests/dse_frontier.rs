//! Differential DSE battery: compile the top-K Pareto frontier points for
//! random networks and check the estimator's promises against the cycle
//! simulator —
//!
//! (a) logits bit-identical to the reference interpreter at every folding
//!     setting (folding changes lane widths, never element order);
//! (b) runs deadlock-free at the chosen FIFO capacities (a deadlock
//!     surfaces as `RunError` and fails the case);
//! (c) sim/analytic cycle ratio inside the EXPERIMENTS.md flaky band
//!     (0.6–1.1) once the design is large enough for steady-state to
//!     dominate ramp effects.
//!
//! Part of `./ci.sh dse` (tier-1, reduced cases) and `./ci.sh soak`.

use qnn::compiler::dse::{explore, pick, DseConfig, ResourceBudget};
use qnn::compiler::{run_images, CompileOptions};
use qnn::dfe::STRATIX_10_GX2800;
use qnn::hw::CycleModel;
use qnn::nn::specgen::spec_strategy;
use qnn::nn::{models, Network, NetworkSpec};
use qnn::tensor::Tensor3;
use qnn_testkit::{prop_assert, prop_assert_eq, props};

fn image_for(spec: &NetworkSpec, seed: u64) -> Tensor3<i8> {
    Tensor3::from_fn(spec.input, |y, x, c| {
        ((seed as usize)
            .wrapping_mul(31)
            .wrapping_add(y * 131 + x * 17 + c * 7)
            .wrapping_mul(2654435761)
            >> 16) as i8
    })
}

/// At least three option sets per spec: the frontier's fastest points,
/// padded with uniform-folding FIFO variants when the frontier is shorter.
fn option_sets(spec: &NetworkSpec) -> Vec<CompileOptions> {
    let budget = ResourceBudget::new(STRATIX_10_GX2800, 2);
    let frontier = explore(spec, &budget, &DseConfig::default());
    assert!(frontier.pick().is_some(), "{} does not fit two Stratix 10", spec.name);
    let mut options: Vec<CompileOptions> =
        frontier.top(3).iter().map(|p| p.compile_options()).collect();
    let mut pad = 128;
    while options.len() < 3 {
        options.push(CompileOptions { fifo_capacity: pad, ..CompileOptions::default() });
        pad *= 4;
    }
    options
}

props! {
    /// (a) + (b): every frontier point of a random spec produces
    /// bit-identical logits and finishes without deadlock.
    #[test]
    fn frontier_points_match_reference_interpreter(
        spec in spec_strategy(),
        seed in 0u64..1000,
        n_images in 1usize..3,
    ) {
        let Some(spec) = spec else {
            return Ok(());
        };
        let net = Network::random(spec, seed);
        let images: Vec<_> =
            (0..n_images as u64).map(|i| image_for(&net.spec, seed + i)).collect();
        let expect: Vec<Vec<i32>> =
            images.iter().map(|img| net.forward(img).logits).collect();
        for (k, opts) in option_sets(&net.spec).iter().enumerate() {
            let got = run_images(&net, &images, opts)
                .unwrap_or_else(|e| panic!("frontier point {k} wedged: {e:?}"));
            prop_assert_eq!(&got.logits, &expect, "frontier point {} logits", k);
        }
    }

    /// (c): the fold-aware analytic model stays inside the flaky band
    /// against the simulator for the picked design point. Tiny random
    /// specs are ramp-dominated (fills and the drain tail are the whole
    /// run), so the band is only asserted once the analytic latency is
    /// large enough for the steady-state period to mean something.
    #[test]
    fn sim_analytic_ratio_in_flaky_band(
        spec in spec_strategy(),
        seed in 0u64..1000,
    ) {
        let Some(spec) = spec else {
            return Ok(());
        };
        let net = Network::random(spec, seed);
        let budget = ResourceBudget::new(STRATIX_10_GX2800, 2);
        let Some(point) = pick(&net.spec, &budget) else {
            return Ok(());
        };
        let analytic =
            CycleModel::analyze_folded(&net.spec, &point.folding).latency();
        let img = image_for(&net.spec, seed);
        let sim = run_images(&net, std::slice::from_ref(&img), &point.compile_options())
            .expect("picked point wedged");
        prop_assert_eq!(&sim.logits[0], &net.forward(&img).logits);
        if analytic < 4_000 {
            return Ok(()); // ramp-dominated; the logits check above still ran
        }
        let ratio = sim.cycles() as f64 / analytic as f64;
        prop_assert!(
            (0.6..=1.1).contains(&ratio),
            "sim {} / analytic {} = {:.3} outside flaky band (fold {:?})",
            sim.cycles(),
            analytic,
            ratio,
            point.folding
        );
    }
}

/// The paper's FMem case: the residual skip buffer must absorb the conv
/// path's lead. Probe downward from the structural default to the minimal
/// power-of-two capacity that still completes, pin that it is well under
/// the default (the formula over-provisions with slack), and pin
/// deadlock-freedom at that minimum.
#[test]
fn skip_path_runs_at_minimal_fifo_capacity() {
    let net = Network::random(models::test_net(8, 4, 2), 11);
    let img = image_for(&net.spec, 4);
    let images = std::slice::from_ref(&img);
    let expect = net.forward(&img).logits;
    let run_with_skip = |capacity: usize| {
        run_images(
            &net,
            images,
            &CompileOptions {
                fifo_overrides: vec![("res2.skipbuf".into(), capacity)],
                ..CompileOptions::default()
            },
        )
    };
    let mut minimal = None;
    for capacity in [4usize, 8, 16, 32, 64, 128, 256, 512] {
        if let Ok(r) = run_with_skip(capacity) {
            assert_eq!(r.logits[0], expect, "skip capacity {capacity}");
            minimal = Some(capacity);
            break;
        }
    }
    let minimal = minimal.expect("default-sized skip buffer must be reachable");
    // Regression pin: the minimal viable capacity for this geometry. The
    // structural default (`skip_capacity`) carries ≥256 slack on top of
    // both window fills, so the DSE-chosen minimum must sit well below it.
    assert!(
        (8..=128).contains(&minimal),
        "minimal skip capacity moved to {minimal}; skip scheduling changed"
    );
}

/// Undersizing the skip buffer must trip the deadlock detector — not hang,
/// not corrupt — with diagnostics that name the offending stream and its
/// occupancy so the user can size it up.
#[test]
fn undersized_skip_fifo_deadlocks_with_diagnostics() {
    let net = Network::random(models::test_net(8, 4, 2), 11);
    let img = image_for(&net.spec, 4);
    let err = run_images(
        &net,
        std::slice::from_ref(&img),
        &CompileOptions {
            fifo_overrides: vec![("res2.skipbuf".into(), 2)],
            ..CompileOptions::default()
        },
    )
    .expect_err("a 2-slot skip buffer cannot absorb the conv path's lead");
    match err {
        qnn::dfe::RunError::Deadlock { cycle, diagnostics } => {
            assert!(cycle > 0);
            assert!(
                diagnostics.contains("res2.skipbuf"),
                "diagnostics do not name the skip stream:\n{diagnostics}"
            );
            assert!(
                diagnostics.contains("2/2 occupied"),
                "diagnostics do not show the full buffer:\n{diagnostics}"
            );
        }
        other => panic!("expected a deadlock, got {other:?}"),
    }
}

/// Deterministic spot-check on the full-featured residual test net: the
/// picked point beats the uniform default end-to-end in simulated cycles,
/// with identical logits.
#[test]
fn picked_point_beats_uniform_on_test_net() {
    let net = Network::random(models::test_net(16, 4, 2), 5);
    let img = image_for(&net.spec, 9);
    let images = std::slice::from_ref(&img);
    let uniform =
        run_images(&net, images, &CompileOptions::default()).expect("uniform run");
    let point = pick(&net.spec, &ResourceBudget::new(STRATIX_10_GX2800, 2))
        .expect("test_net fits");
    let folded = run_images(&net, images, &point.compile_options()).expect("folded run");
    assert_eq!(uniform.logits, folded.logits);
    assert!(
        folded.cycles() < uniform.cycles(),
        "folded {} vs uniform {}",
        folded.cycles(),
        uniform.cycles()
    );
    // This net is big enough for steady state to dominate, so the band
    // from criterion (c) must hold here unconditionally.
    let analytic = CycleModel::analyze_folded(&net.spec, &point.folding).latency();
    let ratio = folded.cycles() as f64 / analytic as f64;
    // Logged in EXPERIMENTS.md ("Flaky-threshold tightening log"); visible
    // under `--nocapture` when re-measuring for a new row.
    println!(
        "dse picked test_net/16: sim {} analytic {analytic} ratio {ratio:.3} uniform {}",
        folded.cycles(),
        uniform.cycles()
    );
    assert!(
        (0.6..=1.1).contains(&ratio),
        "sim {} / analytic {analytic} = {ratio:.3} outside flaky band",
        folded.cycles()
    );
}
