//! Full-architecture runs. The paper-scale 224×224 networks are exercised
//! end to end; because the cycle simulator executes every fabric clock,
//! the ImageNet-scale cases are `#[ignore]`d by default and promoted to
//! the `./ci.sh release-tests` stage (they are also covered by the
//! benches in release mode):
//!
//! ```text
//! ./ci.sh release-tests   # == cargo test --release --test full_networks -- --ignored
//! ```

use qnn::compiler::{run_image, run_images, CompileOptions};
use qnn::data::{CIFAR10, IMAGENET, STL10};
use qnn::hw::CycleModel;
use qnn::nn::{models, Network};

#[test]
fn cifar10_vgg_runs_and_classifies() {
    let net = Network::random(models::vgg_like(32, 10, 2), 1);
    let sim = run_image(&net, &CIFAR10.image(0)).expect("sim");
    assert_eq!(sim.logits[0].len(), 10);
    assert!(sim.argmax(0) < 10);
}

#[test]
fn simulated_cycles_track_the_analytic_model_vgg32() {
    // The analytic model and the simulator must agree on the value, not
    // just the order of magnitude (the model ignores secondary stalls and
    // over-estimates slightly; both counts are deterministic — measured
    // ratio 0.81, band tightened from 0.4–2.5 in the conv-datapath PR).
    let net = Network::random(models::vgg_like(32, 10, 2), 2);
    let sim = run_image(&net, &CIFAR10.image(1)).expect("sim");
    let model = CycleModel::analyze(&net.spec);
    let (got, est) = (sim.cycles() as f64, model.latency() as f64);
    let ratio = got / est;
    assert!(
        (0.6..1.1).contains(&ratio),
        "simulated {got:.3e} vs analytic {est:.3e} (ratio {ratio:.2})"
    );
}

#[test]
fn resnet_style_blocks_run_at_56x56_scale() {
    // A ResNet-18 "conv2_x slice": stem + pool + two identity blocks at
    // reduced channel width, full 2-bit datapath.
    let net = Network::random(models::test_net(56, 10, 2), 4);
    let img = qnn::data::Dataset {
        name: "s",
        side: 56,
        classes: 10,
    }
    .image(0);
    let sim = run_image(&net, &img).expect("sim");
    assert_eq!(sim.logits[0], net.forward(&img).logits);
}

#[test]
fn throughput_improves_with_image_count() {
    // Streaming overlap: per-image cycles for a 4-image run must be lower
    // than for a 1-image run (pipeline fill amortizes).
    let net = Network::random(models::vgg_like(32, 10, 2), 5);
    let one = run_image(&net, &CIFAR10.image(0)).expect("sim");
    let four = run_images(&net, &CIFAR10.images(4), &CompileOptions::default()).expect("sim");
    let per_image_four = four.cycles() as f64 / 4.0;
    assert!(
        per_image_four < one.cycles() as f64,
        "no pipelining across images: {per_image_four} vs {}",
        one.cycles()
    );
}

#[test]
#[ignore = "ImageNet-scale; run via ./ci.sh release-tests"]
fn resnet18_full_imagenet_scale() {
    let net = Network::random(models::resnet18(1000), 10);
    let img = IMAGENET.image(0);
    let sim = run_image(&net, &img).expect("sim");
    assert_eq!(sim.logits[0], net.forward(&img).logits);
    // §IV-B4: ~1.85e6 clocks per picture. Allow a generous band — the
    // simulator includes stalls the paper's estimate does not.
    let cycles = sim.cycles() as f64;
    assert!(
        (0.8e6..4.0e6).contains(&cycles),
        "ResNet-18 cycles {cycles:.3e} out of the paper's regime"
    );
}

#[test]
#[ignore = "ImageNet-scale; run via ./ci.sh release-tests"]
fn alexnet_full_imagenet_scale() {
    let net = Network::random(models::alexnet(1000), 11);
    let img = IMAGENET.image(1);
    let sim = run_image(&net, &img).expect("sim");
    assert_eq!(sim.logits[0], net.forward(&img).logits);
}

#[test]
#[ignore = "STL-scale; run via ./ci.sh release-tests"]
fn stl10_vgg_96_runs() {
    let net = Network::random(models::vgg_like(96, 10, 2), 12);
    let img = STL10.image(0);
    let sim = run_image(&net, &img).expect("sim");
    assert_eq!(sim.logits[0], net.forward(&img).logits);
}
