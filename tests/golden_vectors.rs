//! Golden-vector regression tests: exact output logits for two fixed
//! (spec, seed, image) triples, committed as const arrays. A kernel or
//! scheduler refactor that changes streaming semantics in any way shows up
//! here as a concrete logit diff, not just a reference-mismatch boolean.
//!
//! The vectors were produced by this same harness (see `regen` below) and
//! hold for both the reference interpreter and the streaming simulator —
//! the two must stay bit-identical to each other *and* to history.
//!
//! To regenerate after an intentional semantic change:
//!
//! ```text
//! cargo test --release --test golden_vectors -- --ignored --nocapture
//! ```

use qnn::compiler::run_image;
use qnn::data::{Dataset, CIFAR10};
use qnn::nn::{models, Network, NetworkSpec};
use qnn::tensor::Tensor3;

/// CNV (Table IV): full FINN-style 32×32 network, 2-bit activations.
const CNV_SEED: u64 = 2018;
/// test-net-8: stem conv + max pool + two residual blocks + avg-sum pool +
/// FC stack — the ResNet-block datapath on an 8×8 canvas.
const RESNET_BLOCK_SEED: u64 = 1806;

fn cnv_case() -> (Network, Tensor3<i8>) {
    (Network::random(models::cnv_finn(10, 2), CNV_SEED), CIFAR10.image(0))
}

fn resnet_block_case() -> (Network, Tensor3<i8>) {
    let spec: NetworkSpec = models::test_net(8, 6, 2);
    let img = Dataset { name: "golden", side: 8, classes: 6 }.image(0);
    (Network::random(spec, RESNET_BLOCK_SEED), img)
}

const CNV_GOLDEN: [i32; 10] = [10, -110, -16, 16, -100, 36, 48, 44, 24, 14];

const RESNET_BLOCK_GOLDEN: [i32; 6] = [-20, -2, 0, 14, 18, -24];

#[test]
fn cnv_streaming_logits_match_golden() {
    let (net, img) = cnv_case();
    let sim = run_image(&net, &img).expect("sim");
    assert_eq!(sim.logits[0], CNV_GOLDEN, "streaming CNV logits drifted");
    assert_eq!(net.forward(&img).logits, CNV_GOLDEN, "reference CNV logits drifted");
}

#[test]
fn resnet_block_streaming_logits_match_golden() {
    let (net, img) = resnet_block_case();
    let sim = run_image(&net, &img).expect("sim");
    assert_eq!(sim.logits[0], RESNET_BLOCK_GOLDEN, "streaming residual logits drifted");
    assert_eq!(net.forward(&img).logits, RESNET_BLOCK_GOLDEN, "reference residual logits drifted");
}

#[test]
#[ignore = "golden regeneration helper; prints the const arrays"]
fn regen() {
    let (net, img) = cnv_case();
    println!("const CNV_GOLDEN: [i32; 10] = {:?};", run_image(&net, &img).expect("sim").logits[0]);
    let (net, img) = resnet_block_case();
    println!(
        "const RESNET_BLOCK_GOLDEN: [i32; 6] = {:?};",
        run_image(&net, &img).expect("sim").logits[0]
    );
}
