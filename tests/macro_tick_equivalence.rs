//! Differential macro-tick battery: span dispatch must be
//! **bit-identical** to per-element stepping — same logits, same
//! `CycleReport`s (cycle counts, per-kernel busy/stall tallies,
//! per-stream pushed/max-occupancy) — across randomized networks,
//! streamed-parameter loading, multi-image sequences, 1–3-device
//! lockstep cuts, stall-injected pipelines, and mid-run mode switches.
//!
//! This is the proof obligation behind crediting whole spans
//! arithmetically: a burst replays `k` dense cycles in one dispatch per
//! kernel, so every counter the dense interleaving would have produced
//! must come out of the closed-form credit, exactly.
//!
//! Part of `./ci.sh soak` at `QNN_TEST_CASES=1024`.

use qnn::compiler::{compile, run_images, CompileOptions, Fold, FoldPlan};
use qnn::dfe::{
    Graph, HostSink, HostSource, Io, Kernel, Progress, SchedulerMode, SpanIo, SpanPlan,
    StallInjector, StreamSpec, WakeHint,
};
use qnn::nn::specgen::spec_strategy;
use qnn::nn::{models, Network, NetworkSpec};
use qnn::tensor::Tensor3;
use qnn_testkit::{prop_assert, prop_assert_eq, props};

fn image_for(spec: &NetworkSpec, seed: u64) -> Tensor3<i8> {
    Tensor3::from_fn(spec.input, |y, x, c| {
        ((seed as usize)
            .wrapping_mul(31)
            .wrapping_add(y * 131 + x * 17 + c * 7)
            .wrapping_mul(2654435761)
            >> 16) as i8
    })
}

/// Run the same workload with spans on and off (both ready-list), span
/// dispatch with schedule replay armed on top, plus the dense reference,
/// and assert logits and every per-device report agree.
fn assert_dispatch_agrees(
    net: &Network,
    images: &[Tensor3<i8>],
    base: &CompileOptions,
) -> qnn_testkit::prop::CaseResult {
    let run = |scheduler, macro_ticks, schedule_replay| {
        run_images(
            net,
            images,
            &CompileOptions {
                scheduler,
                macro_ticks,
                schedule_replay,
                ..base.clone()
            },
        )
        .expect("run")
    };
    let element = run(SchedulerMode::ReadyList, false, false);
    let span = run(SchedulerMode::ReadyList, true, false);
    prop_assert_eq!(&element.logits, &span.logits);
    prop_assert_eq!(&element.reports, &span.reports);
    let replay = run(SchedulerMode::ReadyList, true, true);
    prop_assert_eq!(&element.logits, &replay.logits);
    prop_assert_eq!(&element.reports, &replay.reports);
    let dense = run(SchedulerMode::Dense, false, false);
    prop_assert_eq!(&dense.logits, &span.logits);
    prop_assert_eq!(&dense.reports, &span.reports);
    Ok(())
}

props! {
    /// Single-device: random conv/pool/fc networks, multi-image sequences
    /// (image-reset state in conv/pool must survive spans), with the
    /// §III-B1a parameter-streaming path folded in (the loader phase is
    /// its own span kind).
    #[test]
    fn single_device_reports_identical(
        spec in spec_strategy(),
        seed in 0u64..1000,
        n_images in 1usize..4,
        stream_params in 0u8..2,
    ) {
        let Some(spec) = spec else {
            return Ok(());
        };
        let net = Network::random(spec, seed);
        let images: Vec<_> =
            (0..n_images as u64).map(|i| image_for(&net.spec, seed + i)).collect();
        let base = CompileOptions {
            stream_parameters: stream_params == 1,
            ..CompileOptions::default()
        };
        assert_dispatch_agrees(&net, &images, &base)?;
    }

    /// Residual networks (split/add/skip-buffer kernels) under FIFO
    /// backpressure stress: small FIFOs shorten feasible spans without
    /// ever changing the committed trajectory.
    #[test]
    fn residual_nets_reports_identical_under_fifo_stress(
        seed in 0u64..200,
        fifo in 4usize..64,
    ) {
        let net = Network::random(models::test_net(8, 4, 2), seed);
        let img = image_for(&net.spec, seed + 7);
        let base = CompileOptions { fifo_capacity: fifo, ..CompileOptions::default() };
        assert_dispatch_agrees(&net, std::slice::from_ref(&img), &base)?;
    }

    /// A non-trivial folded design point: folded kernels return no
    /// `SpanPlan` (their per-cycle port counts defeat the one-element
    /// burst arithmetic), so span dispatch must step them densely while
    /// still bursting the unfolded stages around them — with identical
    /// logits and reports. This pins the folding/span interaction the DSE
    /// frontier relies on.
    #[test]
    fn folded_design_point_reports_identical(
        seed in 0u64..200,
        pe_bits in 0u32..3,
        simd_bits in 0u32..3,
        fifo in 16usize..128,
        n_images in 1usize..3,
    ) {
        let net = Network::random(models::test_net(8, 4, 2), seed);
        let images: Vec<_> =
            (0..n_images as u64).map(|i| image_for(&net.spec, seed + 13 + i)).collect();
        let folding = FoldPlan::new()
            .with("conv0", Fold::new(1 << pe_bits, 1 << simd_bits))
            .with("pool1", Fold::new(1 << simd_bits, 2))
            .with("res2.conv2", Fold::new(4, 1 << pe_bits))
            .with("res3.conv1", Fold::new(2, 2))
            .with("fc6", Fold::new(1 << pe_bits, 4));
        let base = CompileOptions {
            layer_folding: folding,
            fifo_capacity: fifo,
            ..CompileOptions::default()
        };
        assert_dispatch_agrees(&net, &images, &base)?;
    }

    /// 1–3-device lockstep cuts. The lockstep executor drives
    /// `step_cycle` directly — per-edge, never bursting — so span
    /// equivalence across cuts is structural; this pins it, and the
    /// single-device span runs must still match the cut's per-element
    /// logits.
    #[test]
    fn device_cuts_reports_identical(
        spec in spec_strategy(),
        seed in 0u64..1000,
        devices in 1usize..4,
    ) {
        let Some(spec) = spec else {
            return Ok(());
        };
        let stages = spec.stages.len();
        let devices = devices.min(stages);
        let stage_device: Vec<usize> =
            (0..stages).map(|i| (i * devices / stages).min(devices - 1)).collect();
        let net = Network::random(spec, seed);
        let img = image_for(&net.spec, seed);
        let base = CompileOptions {
            stage_device: Some(stage_device),
            ..CompileOptions::default()
        };
        assert_dispatch_agrees(&net, std::slice::from_ref(&img), &base)?;
    }

    /// StallInjector-laced pipelines: injector-wrapped stages are
    /// `AlwaysTick` with no span promise, so every burst window they are
    /// awake in is vetoed — runs interleave spans with per-element
    /// stretches at injector-chosen boundaries. Any mis-credited span
    /// would shift the injector's tick-driven RNG and change every
    /// downstream cycle count.
    #[test]
    fn stall_injected_pipelines_reports_identical(
        n in 1usize..80,
        stages in 1usize..6,
        fifo in 1usize..8,
        pct in 0u8..50,
        seed in 0u64..10_000,
        wrap_mask in 0u32..64,
    ) {
        let build = |macro_ticks: bool| {
            let mut g = Graph::with_scheduler(SchedulerMode::ReadyList);
            g.set_macro_ticks(macro_ticks);
            let data: Vec<i32> = (0..n as i32).collect();
            let mut prev = g.add_stream(StreamSpec::new("s0", 8, fifo));
            g.add_kernel(Box::new(HostSource::new("src", data)), &[], &[prev]);
            for i in 0..stages {
                let next = g.add_stream(StreamSpec::new(format!("s{}", i + 1), 8, fifo));
                let k: Box<dyn Kernel> = Box::new(SpanAffine { mul: 3, add: i as i32 });
                let k = if wrap_mask & (1 << i) != 0 {
                    StallInjector::wrap(k, seed.wrapping_add(i as u64), pct)
                } else {
                    k
                };
                g.add_kernel(k, &[prev], &[next]);
                prev = next;
            }
            let (sink, handle) = HostSink::new("dst", n);
            g.add_kernel(Box::new(sink), &[prev], &[]);
            // Injected stalls can produce legitimate full-stall cycles, so
            // deadlock detection is off (the budget still bounds the run).
            let report = g.run_opts(4_000_000, false).expect("run");
            (handle.take(), report)
        };
        let (out_e, rep_e) = build(false);
        let (out_s, rep_s) = build(true);
        prop_assert_eq!(&out_e, &out_s);
        prop_assert_eq!(&rep_e, &rep_s);
    }

    /// Mid-run mode switches on a compiled network: flip span dispatch on
    /// and off at arbitrary cycle boundaries mid-inference. Bursts leave
    /// no cross-cycle state behind, so the stitched run must equal one
    /// uninterrupted per-element run — same logits, same cumulative
    /// counters, same total cycle count.
    #[test]
    fn mid_run_mode_switches_are_invisible(
        seed in 0u64..200,
        segment in 16u64..400,
        start_on in 0u8..2,
    ) {
        let net = Network::random(models::test_net(8, 3, 2), seed);
        let img = image_for(&net.spec, seed + 3);
        let images = std::slice::from_ref(&img);
        let opts = CompileOptions::default();
        let reference = run_images(&net, images, &CompileOptions {
            scheduler: SchedulerMode::ReadyList,
            macro_ticks: false,
            schedule_replay: false,
            ..opts.clone()
        }).expect("reference run");

        let compiled = compile(&net, images, &CompileOptions {
            scheduler: SchedulerMode::ReadyList,
            macro_ticks: start_on == 1,
            schedule_replay: start_on == 1,
            ..opts
        });
        let mut graphs = compiled.graphs;
        prop_assert_eq!(graphs.len(), 1);
        let g = &mut graphs[0];
        let mut on = start_on == 1;
        let mut total: u64 = 0;
        let report = loop {
            match g.run_opts(segment, false) {
                Ok(report) => break report,
                Err(_) => {
                    // Timed out mid-flight: flip the dispatch mode and
                    // keep going on the same graph state.
                    total += segment;
                    on = !on;
                    g.set_macro_ticks(on);
                    // Replay re-arms on every knob flip; toggling it in
                    // lockstep keeps the switch storm honest.
                    g.set_schedule_replay(on);
                    prop_assert!(total < 50_000_000, "mode-switch run wedged");
                }
            }
        };
        let logits = compiled.sink.take();
        prop_assert_eq!(&logits, &reference.logits[0], "mid-switch logits diverged");
        // The final segment's report carries the cumulative kernel and
        // stream counters plus that segment's cycle count.
        let reference_report = &reference.reports[0];
        prop_assert_eq!(&report.kernels, &reference_report.kernels);
        prop_assert_eq!(&report.streams, &reference_report.streams);
        prop_assert_eq!(total + report.cycles, reference_report.cycles);
    }
}

/// A span-capable pass-through stage for the injector battery: parkable,
/// uniform one-in-one-out promise, pure on `Stalled`/`Idle`.
struct SpanAffine {
    mul: i32,
    add: i32,
}

impl Kernel for SpanAffine {
    fn name(&self) -> &str {
        "affine"
    }
    fn tick(&mut self, io: &mut Io<'_>) -> Progress {
        if io.can_read(0) && io.can_write(0) {
            let v = io.read(0).expect("checked");
            io.write(0, v * self.mul + self.add);
            Progress::Busy
        } else if io.can_read(0) {
            Progress::Stalled
        } else {
            Progress::Idle
        }
    }
    fn wake_hint(&self) -> WakeHint {
        WakeHint::Parkable
    }
    fn span_hint(&self, _in_len: &[usize]) -> Option<SpanPlan> {
        Some(SpanPlan::new(u64::MAX, 0b1, 0b1))
    }
    fn run_span(&mut self, io: &mut SpanIo<'_>, n: u64) {
        for _ in 0..n {
            let v = io.pop(0);
            io.push(0, v * self.mul + self.add);
        }
    }
}

/// Deterministic spot-check (not property-sized): the exact cycle count of
/// a full residual network is identical across dispatch modes, so the
/// EXPERIMENTS flaky-threshold bands calibrated under per-element stepping
/// carry over unchanged.
#[test]
fn cycle_counts_identical_on_residual_network() {
    let net = Network::random(models::test_net(16, 4, 2), 3);
    let img = image_for(&net.spec, 11);
    let run = |macro_ticks| {
        run_images(
            &net,
            std::slice::from_ref(&img),
            &CompileOptions {
                scheduler: SchedulerMode::ReadyList,
                macro_ticks,
                ..CompileOptions::default()
            },
        )
        .expect("run")
    };
    let element = run(false);
    let span = run(true);
    assert_eq!(element.logits, span.logits);
    assert_eq!(element.reports, span.reports);
    assert!(span.cycles() > 0);
}

/// `QNN_MACRO_TICKS` is the documented selection mechanism; pin the
/// default (on) without mutating the process env under a threaded harness
/// (the parser's spellings are covered by dfe-platform unit tests).
#[test]
fn macro_tick_env_default_is_on() {
    if std::env::var("QNN_MACRO_TICKS").is_err() {
        assert!(qnn::dfe::macro_ticks_from_env());
        assert!(CompileOptions::default().macro_ticks);
    }
}

