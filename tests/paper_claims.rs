//! Cross-cutting qualitative claims from the paper's evaluation, checked
//! against our models and simulator (quantities recorded in
//! EXPERIMENTS.md; these tests pin the *orderings*).

use qnn::dfe::{MAIA_FCLK_MHZ, STRATIX_V_5SGSD8};
use qnn::hw::specs::paper;
use qnn::hw::{
    dfe_power_watts, energy_joules, estimate_network, gpu_power_watts, CycleModel, GpuModel,
    GTX1080, P100,
};
use qnn::nn::models;

/// Figure 5's headline: the DFE beats the GPU at 32×32 (kernel-invocation
/// overhead), loses at 224×224. The paper averages 50 000 images, so the
/// DFE quantity is the steady-state period.
#[test]
fn fig5_crossover_between_32_and_224() {
    let vgg32 = models::vgg_like(32, 10, 2);
    let dfe_32 = CycleModel::ms(CycleModel::analyze(&vgg32).period(), MAIA_FCLK_MHZ);
    for gpu in [GpuModel::new(P100), GpuModel::new(GTX1080)] {
        let gpu_32 = gpu.time_ms(&vgg32);
        assert!(dfe_32 < gpu_32, "{}: DFE {dfe_32} ms vs GPU {gpu_32} ms at 32²", gpu.spec.name);
    }
    let resnet = models::resnet18(1000);
    let dfe_224 = CycleModel::ms(CycleModel::analyze(&resnet).period(), MAIA_FCLK_MHZ);
    for gpu in [GpuModel::new(P100), GpuModel::new(GTX1080)] {
        let gpu_224 = gpu.time_ms(&resnet);
        assert!(
            gpu_224 < dfe_224,
            "{}: GPU must win at 224² ({gpu_224} vs {dfe_224})",
            gpu.spec.name
        );
        // Abstract: "4× slower ... when compared to the same NN on the
        // latest Nvidia GPUs". Our overlapped-I/O DFE model is faster than
        // the paper's measured system, so the gap narrows; require the GPU
        // win to stay within a 1.2–8× band.
        let slowdown = dfe_224 / gpu_224;
        assert!((1.2..8.0).contains(&slowdown), "slowdown {slowdown}");
    }
}

/// §IV-B2: on a layer-serial device, doubling the layer count roughly
/// doubles the time; the streaming architecture overlaps the new layers
/// almost completely. (The paper demonstrates this with ResNet-18 vs
/// AlexNet, whose different stems confound the comparison — see
/// EXPERIMENTS.md; here the clean ablation doubles the depth of the same
/// topology.)
#[test]
fn depth_penalty_dfe_below_gpu() {
    let base = models::vgg_like(32, 10, 2);
    let deep = models::vgg_like_deep(32, 10, 2);
    let dfe_ratio = CycleModel::analyze(&deep).period() as f64
        / CycleModel::analyze(&base).period() as f64;
    let gpu_ratio = GpuModel::new(P100).time_ms(&deep) / GpuModel::new(P100).time_ms(&base);
    assert!(
        dfe_ratio < 1.2,
        "doubled depth must be nearly free on the streaming DFE: {dfe_ratio}"
    );
    // Doubling the conv count adds ~46% launched ops on the GPU model.
    assert!(gpu_ratio > 1.35, "the GPU must pay for every extra layer: {gpu_ratio}");
    assert!(dfe_ratio < gpu_ratio);

    // And the paper's own pairing, reported for the record: the DFE's
    // ResNet/AlexNet ratio must stay below the GPU's serial ratio bound.
    let res = CycleModel::analyze(&models::resnet18(1000));
    let alex = CycleModel::analyze(&models::alexnet(1000));
    let serial_ratio = res.serial_bound() as f64 / alex.serial_bound() as f64;
    let stream_ratio = res.latency() as f64 / alex.latency() as f64;
    assert!(stream_ratio < serial_ratio);
}

/// Figure 7: single-DFE VGG-like designs draw ≥15× less power than GPUs.
#[test]
fn fig7_power_gap() {
    for side in [32usize, 96, 144] {
        let spec = models::vgg_like(side, 10, 2);
        let usage = estimate_network(&spec, 1).total;
        let dfe = dfe_power_watts(usage, 1, &STRATIX_V_5SGSD8, MAIA_FCLK_MHZ).total();
        let gpu = gpu_power_watts(&P100);
        assert!(gpu / dfe >= 15.0, "VGG-{side}: {gpu:.0} W vs {dfe:.1} W = {:.1}×", gpu / dfe);
    }
}

/// Figure 8: per-image energy is up to 20× lower on the DFE for VGG-like
/// nets, and stays lower (≥50% by the paper, here checked ≥25%) even for
/// the multi-DFE ImageNet networks.
#[test]
fn fig8_energy_gap() {
    // Single-DFE case.
    let vgg = models::vgg_like(32, 10, 2);
    let usage = estimate_network(&vgg, 1).total;
    let dfe_t = CycleModel::ms(CycleModel::analyze(&vgg).latency(), MAIA_FCLK_MHZ);
    let dfe_e =
        energy_joules(dfe_power_watts(usage, 1, &STRATIX_V_5SGSD8, MAIA_FCLK_MHZ).total(), dfe_t);
    let gpu = GpuModel::new(P100);
    let gpu_e = energy_joules(gpu_power_watts(&P100), gpu.time_ms(&vgg));
    assert!(gpu_e / dfe_e >= 5.0, "VGG-32 energy gap only {:.1}×", gpu_e / dfe_e);

    // Multi-DFE ImageNet case.
    let resnet = models::resnet18(1000);
    let usage = estimate_network(&resnet, 3).total;
    let dfe_t = CycleModel::ms(CycleModel::analyze(&resnet).period(), MAIA_FCLK_MHZ);
    let dfe_e =
        energy_joules(dfe_power_watts(usage, 3, &STRATIX_V_5SGSD8, MAIA_FCLK_MHZ).total(), dfe_t);
    let gpu_e = energy_joules(gpu_power_watts(&P100), gpu.time_ms(&resnet));
    assert!(
        dfe_e < gpu_e * 0.75,
        "ResNet-18 on 3 DFEs should still save energy: {dfe_e} vs {gpu_e}"
    );
}

/// §IV-B4 + §V: real-time capability — more than 60 fps for every input
/// size, and the Stratix 10 projection lands at 3–4 ms for ResNet-18.
#[test]
fn scalability_realtime_and_stratix10_projection() {
    for (spec, dfes) in [
        (models::vgg_like(32, 10, 2), 1usize),
        (models::vgg_like(96, 10, 2), 1),
        (models::vgg_like(144, 10, 2), 1),
        (models::alexnet(1000), 3),
        (models::resnet18(1000), 3),
    ] {
        let _ = dfes;
        let ms = CycleModel::ms(CycleModel::analyze(&spec).latency(), MAIA_FCLK_MHZ);
        assert!(ms < 1000.0 / 60.0, "{}: {ms:.2} ms misses 60 fps", spec.name);
    }
    // Stratix 10 at 5× the clock: same cycle count, 525 MHz.
    let resnet_cycles = CycleModel::analyze(&models::resnet18(1000)).latency();
    let s10_ms = CycleModel::ms(resnet_cycles, 5.0 * MAIA_FCLK_MHZ);
    assert!((1.0..5.0).contains(&s10_ms), "Stratix 10 projection {s10_ms:.2} ms (paper: 3–4)");
}

/// The §IV-B4 sanity anchor: our analytic ResNet-18 latency vs the paper's
/// 1.85×10⁶-cycle estimate and 16.1 ms measurement.
#[test]
fn resnet18_cycle_estimate_anchor() {
    let cycles = CycleModel::analyze(&models::resnet18(1000)).latency() as f64;
    let measured_cycles = paper::RESNET18_TIME_MS * MAIA_FCLK_MHZ * 1e3;
    assert!(
        cycles / paper::RESNET18_CLOCKS_ESTIMATE < 2.5
            && paper::RESNET18_CLOCKS_ESTIMATE / cycles < 2.5,
        "cycle estimate {cycles:.3e} vs paper {:.3e}",
        paper::RESNET18_CLOCKS_ESTIMATE
    );
    assert!(
        cycles / measured_cycles < 2.5 && measured_cycles / cycles < 2.5,
        "cycle estimate {cycles:.3e} vs measured {measured_cycles:.3e}"
    );
}

/// Table IV orderings against FINN's published numbers: FINN is faster and
/// lower-power (binary activations, heavy optimization); our DFE uses more
/// resources but delivers the multi-bit accuracy advantage.
#[test]
fn table4_orderings() {
    let finn = qnn::hw::specs::FINN_CNV_CIFAR10;
    let spec = models::vgg_like(32, 10, 2);
    let usage = estimate_network(&spec, 1).total;
    let dfe_ms = CycleModel::ms(CycleModel::analyze(&spec).period(), MAIA_FCLK_MHZ);
    let dfe_w = dfe_power_watts(usage, 1, &STRATIX_V_5SGSD8, MAIA_FCLK_MHZ).total();
    assert!(finn.time_ms < dfe_ms, "FINN is faster ({} vs {dfe_ms})", finn.time_ms);
    assert!(finn.power_w < dfe_w, "FINN draws less power");
    assert!(finn.luts < usage.luts, "FINN uses fewer LUTs");
    assert!(finn.bram_kbits < usage.bram_kbits, "FINN uses less BRAM");
}
