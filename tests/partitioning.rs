//! Multi-DFE partitioning and scale-out behaviour (paper §III-B6, §IV-B4).

use qnn::compiler::{partition, run_images, CompileOptions};
use qnn::dfe::{MaxRing, STRATIX_10_GX2800, STRATIX_V_5SGSD8};
use qnn::hw::estimate_network;
use qnn::nn::{models, Network};

#[test]
fn partitioner_output_drives_the_lowerer() {
    // Partition a mid-size network for an artificially small device so the
    // cut is exercised, then run the partitioned design and check
    // correctness end to end.
    let mut tiny_device = STRATIX_V_5SGSD8;
    tiny_device.luts /= 6;
    tiny_device.ffs /= 6;
    let spec = models::vgg_like(32, 10, 2);
    let p = partition(&spec, &tiny_device, &MaxRing::default()).expect("partition");
    assert!(p.num_dfes() >= 2, "expected a forced split, got {}", p.num_dfes());

    let net = Network::random(spec, 9);
    let img = qnn::data::CIFAR10.image(3);
    let sim = run_images(
        &net,
        std::slice::from_ref(&img),
        &CompileOptions { stage_device: Some(p.stage_device.clone()), ..CompileOptions::default() },
    )
    .expect("partitioned run");
    assert_eq!(sim.logits[0], net.forward(&img).logits);
    assert_eq!(sim.reports.len(), p.num_dfes());
}

#[test]
fn partition_usage_matches_network_estimate() {
    let spec = models::alexnet(1000);
    let p = partition(&spec, &STRATIX_V_5SGSD8, &MaxRing::default()).expect("partition");
    let est = estimate_network(&spec, p.num_dfes());
    assert_eq!(p.total_usage(), est.total, "partitioner and estimator disagree");
}

#[test]
fn every_paper_network_partitions_on_stratix_v() {
    for spec in [
        models::vgg_like(32, 10, 2),
        models::vgg_like(96, 10, 2),
        models::vgg_like(144, 10, 2),
        models::vgg_like(224, 1000, 2),
        models::alexnet(1000),
        models::resnet18(1000),
        models::resnet18_plain(1000),
    ] {
        let p = partition(&spec, &STRATIX_V_5SGSD8, &MaxRing::default())
            .unwrap_or_else(|e| panic!("{} failed to partition: {e}", spec.name));
        assert!(p.num_dfes() <= 8, "{} needs {} DFEs (> MPC-X's 8)", spec.name, p.num_dfes());
    }
}

#[test]
fn stratix10_consolidates_devices() {
    // §IV-B4: next-generation parts fit bigger networks on fewer devices.
    for spec in [models::alexnet(1000), models::resnet18(1000)] {
        let v = partition(&spec, &STRATIX_V_5SGSD8, &MaxRing::default()).expect("v");
        let s10 = partition(&spec, &STRATIX_10_GX2800, &MaxRing::default()).expect("s10");
        assert!(
            s10.num_dfes() < v.num_dfes(),
            "{}: Stratix 10 should need fewer devices ({} vs {})",
            spec.name,
            s10.num_dfes(),
            v.num_dfes()
        );
        assert_eq!(s10.num_dfes(), 1);
    }
}

#[test]
fn skip_buffer_occupancy_stays_within_provisioned_capacity() {
    // The Fig. 2 skip buffer is provisioned from the paper's sizing rule;
    // the measured high-water mark must stay within it (and be nonzero —
    // the buffer really is needed).
    let net = Network::random(models::test_net(16, 4, 2), 13);
    let img = qnn::data::Dataset { name: "s", side: 16, classes: 4 }.image(0);
    let sim = run_images(&net, std::slice::from_ref(&img), &CompileOptions::default())
        .expect("run");
    let mut saw_skip = false;
    for s in &sim.reports[0].streams {
        if s.name.contains("skipbuf") {
            saw_skip = true;
            assert!(s.max_occupancy > 0, "skip buffer '{}' never used", s.name);
            assert!(
                s.max_occupancy <= s.capacity,
                "skip buffer '{}' overflows its provisioning",
                s.name
            );
        }
    }
    assert!(saw_skip, "no skip buffers found in the lowered design");
}
