//! Property-based end-to-end equivalence: for *randomized* layer
//! geometries — kernel sizes, strides, padding, channel counts, activation
//! widths — the streaming pipeline must match the reference interpreter
//! exactly. This is the widest net we can cast over the kernel state
//! machines (ring indexing, drain/reset paths, threshold fusion).

use qnn::compiler::{run_images, CompileOptions};
use qnn::nn::{models, Network, NetworkSpec};
use qnn::tensor::Tensor3;
use qnn_testkit::{prop_assert_eq, props};

fn image_for(spec: &NetworkSpec, seed: u64) -> Tensor3<i8> {
    Tensor3::from_fn(spec.input, |y, x, c| {
        ((seed as usize)
            .wrapping_mul(31)
            .wrapping_add(y * 131 + x * 17 + c * 7)
            .wrapping_mul(2654435761)
            >> 16) as i8
    })
}

use qnn::nn::specgen::spec_strategy;

props! {
    /// Randomized conv/pool/fc chains are bit-exact in the simulator.
    #[test]
    fn random_conv_chains_are_bit_exact(
        spec in spec_strategy(),
        seed in 0u64..1000,
    ) {
        let Some(spec) = spec else {
            return Ok(());
        };
        let net = Network::random(spec, seed);
        let img = image_for(&net.spec, seed);
        let expect = net.forward(&img).logits;
        let sim = run_images(&net, std::slice::from_ref(&img), &CompileOptions::default())
            .expect("sim");
        prop_assert_eq!(&sim.logits[0], &expect);
    }

    /// Loader equivalence: a pipeline whose conv kernels start from
    /// `ConvKernel::new_streamed` (weights/thresholds arriving over a
    /// parameter stream before the first image) produces logits
    /// bit-identical to the preloaded `ConvKernel::new` pipeline, across
    /// random layer geometries.
    #[test]
    fn streamed_parameter_loading_matches_preloaded(
        spec in spec_strategy(),
        seed in 0u64..1000,
        n_images in 1usize..3,
    ) {
        let Some(spec) = spec else {
            return Ok(());
        };
        let net = Network::random(spec, seed);
        let images: Vec<_> =
            (0..n_images).map(|i| image_for(&net.spec, seed + 31 * i as u64)).collect();
        let preloaded = run_images(&net, &images, &CompileOptions::default())
            .expect("preloaded sim");
        let streamed = run_images(
            &net,
            &images,
            &CompileOptions { stream_parameters: true, ..CompileOptions::default() },
        )
        .expect("streamed sim");
        prop_assert_eq!(&streamed.logits, &preloaded.logits);
    }

    /// Residual networks with random seeds and small FIFOs stay bit-exact
    /// (backpressure stress).
    #[test]
    fn residual_nets_bit_exact_under_fifo_stress(
        seed in 0u64..200,
        fifo in 4usize..64,
    ) {
        let net = Network::random(models::test_net(8, 4, 2), seed);
        let img = image_for(&net.spec, seed + 7);
        let expect = net.forward(&img).logits;
        let sim = run_images(
            &net,
            std::slice::from_ref(&img),
            &CompileOptions { fifo_capacity: fifo, ..CompileOptions::default() },
        )
        .expect("sim under FIFO stress");
        prop_assert_eq!(&sim.logits[0], &expect);
    }
}
