//! Property-based end-to-end equivalence: for *randomized* layer
//! geometries — kernel sizes, strides, padding, channel counts, activation
//! widths — the streaming pipeline must match the reference interpreter
//! exactly. This is the widest net we can cast over the kernel state
//! machines (ring indexing, drain/reset paths, threshold fusion).

use qnn_testkit::{map, prop_assert_eq, props, Strategy};
use qnn::compiler::{run_images, CompileOptions};
use qnn::nn::{models, Network, NetworkSpec, PoolKind, Stage};
use qnn::tensor::{ConvGeometry, FilterShape, Shape3, Tensor3};

fn image_for(spec: &NetworkSpec, seed: u64) -> Tensor3<i8> {
    Tensor3::from_fn(spec.input, |y, x, c| {
        ((seed as usize)
            .wrapping_mul(31)
            .wrapping_add(y * 131 + x * 17 + c * 7)
            .wrapping_mul(2654435761)
            >> 16) as i8
    })
}

/// A random two-conv network with a pool and a classifier.
#[allow(clippy::too_many_arguments)] // mirrors the property parameter tuple
fn random_spec(
    side: usize,
    k1: usize,
    stride1: usize,
    pad1: usize,
    c1: usize,
    k2: usize,
    pad2: usize,
    c2: usize,
    act_bits: u32,
) -> Option<NetworkSpec> {
    if side + 2 * pad1 < k1 {
        return None;
    }
    let input = Shape3::square(side, 3);
    let g1 = ConvGeometry::new(input, FilterShape::new(k1, 3, c1), stride1, pad1);
    let s1 = g1.output();
    if s1.h + 2 * pad2 < k2 || s1.w + 2 * pad2 < k2 {
        return None;
    }
    let g2 = ConvGeometry::new(s1, FilterShape::new(k2, c1, c2), 1, pad2);
    let s2 = g2.output();
    if s2.h < 2 || s2.w < 2 {
        return None;
    }
    let pool_out = Shape3::new((s2.h - 2) / 2 + 1, (s2.w - 2) / 2 + 1, c2);
    Some(NetworkSpec::new(
        "prop",
        input,
        act_bits,
        vec![
            Stage::ConvInput { geom: g1 },
            Stage::Conv { geom: g2 },
            Stage::Pool { input: s2, k: 2, stride: 2, pad: 0, kind: PoolKind::Max },
            Stage::FullyConnected {
                in_features: pool_out.len(),
                out_features: 5,
                bn_act: false,
            },
        ],
    ))
}

/// Strategy over whole network specs: a geometry tuple mapped through
/// [`random_spec`], with the inverse recovering the tuple from the built
/// spec so a failing network shrinks toward small sides/kernels/channels
/// (plain mapping would freeze shrinking at the first failing geometry).
fn spec_strategy() -> impl Strategy<Value = Option<NetworkSpec>> {
    map(
        (
            5usize..12, // side
            1usize..4,  // k1
            1usize..3,  // stride1
            0usize..2,  // pad1
            1usize..5,  // c1
            1usize..3,  // k2
            0usize..2,  // pad2
            1usize..4,  // c2
            1u32..4,    // act_bits
        ),
        |(side, k1, stride1, pad1, c1, k2, pad2, c2, act_bits)| {
            random_spec(side, k1, stride1, pad1, c1, k2, pad2, c2, act_bits)
        },
        |spec| {
            let spec = spec.as_ref()?;
            let (Stage::ConvInput { geom: g1 }, Stage::Conv { geom: g2 }) =
                (&spec.stages[0], &spec.stages[1])
            else {
                return None;
            };
            Some((
                spec.input.h,
                g1.filter.k,
                g1.stride,
                g1.pad,
                g1.filter.o,
                g2.filter.k,
                g2.pad,
                g2.filter.o,
                spec.act_bits,
            ))
        },
    )
}

props! {
    /// Randomized conv/pool/fc chains are bit-exact in the simulator.
    #[test]
    fn random_conv_chains_are_bit_exact(
        spec in spec_strategy(),
        seed in 0u64..1000,
    ) {
        let Some(spec) = spec else {
            return Ok(());
        };
        let net = Network::random(spec, seed);
        let img = image_for(&net.spec, seed);
        let expect = net.forward(&img).logits;
        let sim = run_images(&net, std::slice::from_ref(&img), &CompileOptions::default())
            .expect("sim");
        prop_assert_eq!(&sim.logits[0], &expect);
    }

    /// Residual networks with random seeds and small FIFOs stay bit-exact
    /// (backpressure stress).
    #[test]
    fn residual_nets_bit_exact_under_fifo_stress(
        seed in 0u64..200,
        fifo in 4usize..64,
    ) {
        let net = Network::random(models::test_net(8, 4, 2), seed);
        let img = image_for(&net.spec, seed + 7);
        let expect = net.forward(&img).logits;
        let sim = run_images(
            &net,
            std::slice::from_ref(&img),
            &CompileOptions { fifo_capacity: fifo, ..CompileOptions::default() },
        )
        .expect("sim under FIFO stress");
        prop_assert_eq!(&sim.logits[0], &expect);
    }
}
