//! Differential schedule-replay battery: replaying a recorded steady-state
//! period must be **bit-identical** to planning every burst live — same
//! logits, same `CycleReport`s — and must *fall back* (never corrupt)
//! whenever the stream leaves steady state: the final-period drain, short
//! ramps that never settle, stall-injected pipelines, folded lanes, and
//! mid-run knob flips.
//!
//! The equivalence argument lives in `dfe_platform::replay` and DESIGN.md
//! §"Steady-state schedule replay"; these tests are its proof obligation
//! at the compiled-network level.

use qnn::compiler::{compile, run_images, CompileOptions, Fold, FoldPlan};
use qnn::dfe::{
    Graph, HostSink, HostSource, Io, Kernel, Progress, SchedulerMode, SpanIo, SpanPlan,
    StallInjector, StreamSpec, WakeHint,
};
use qnn::nn::{models, Network, NetworkSpec};
use qnn::tensor::Tensor3;

fn image_for(spec: &NetworkSpec, seed: u64) -> Tensor3<i8> {
    Tensor3::from_fn(spec.input, |y, x, c| {
        ((seed as usize)
            .wrapping_mul(31)
            .wrapping_add(y * 131 + x * 17 + c * 7)
            .wrapping_mul(2654435761)
            >> 16) as i8
    })
}

fn run_replay(net: &Network, images: &[Tensor3<i8>], replay: bool) -> qnn::compiler::SimResult {
    run_images(
        net,
        images,
        &CompileOptions {
            scheduler: SchedulerMode::ReadyList,
            macro_ticks: true,
            schedule_replay: replay,
            ..CompileOptions::default()
        },
    )
    .expect("run")
}

/// The tentpole invariant: on a stream long enough to reach steady state,
/// replay engages (records one period, replays many) and the run is
/// bit-identical to the planned-burst run — including the tail image,
/// where the source's final-period drain fingerprint forces the guard
/// fallback instead of replaying past the end of the buffer.
#[test]
fn long_stream_replays_and_stays_bit_identical() {
    let net = Network::random(models::test_net(8, 4, 2), 42);
    let images: Vec<_> = (0..24).map(|s| image_for(&net.spec, s)).collect();
    let on = run_replay(&net, &images, true);
    let off = run_replay(&net, &images, false);
    assert_eq!(on.logits, off.logits);
    assert_eq!(on.reports, off.reports);
    let d = on.reports[0].replay;
    assert!(d.tape_len > 0, "no period recorded: {d:?}");
    assert!(d.images_replayed >= 8, "replay barely engaged: {d:?}");
    assert!(d.spans_bypassed > 0, "replayed images must bypass planning: {d:?}");
    // The non-periodic tail must exit via the guard, not a panic.
    assert!(d.guard_fallbacks >= 1, "tail drain should fall back: {d:?}");
    // The replay-off run never touches the machine.
    assert_eq!(off.reports[0].replay, qnn::dfe::ReplayDiag::default());
}

/// A ramp that never settles (too few images for the pipeline depth) must
/// leave replay idle — correct output, zero replayed images, no fallback
/// storm.
#[test]
fn short_ramp_never_replays_but_stays_correct() {
    let net = Network::random(models::test_net(8, 4, 2), 42);
    let images: Vec<_> = (0..2).map(|s| image_for(&net.spec, s)).collect();
    let on = run_replay(&net, &images, true);
    let off = run_replay(&net, &images, false);
    assert_eq!(on.logits, off.logits);
    assert_eq!(on.reports, off.reports);
    assert_eq!(on.reports[0].replay.images_replayed, 0);
    assert_eq!(on.reports[0].replay.spans_bypassed, 0);
}

/// Folded lanes have no replay token (multi-element port traffic defeats
/// the one-element burst arithmetic *and* the fingerprint), so the first
/// boundary vetoes replay permanently — and the run is still bit-exact.
#[test]
fn folded_lanes_veto_replay() {
    let net = Network::random(models::test_net(8, 4, 2), 7);
    let images: Vec<_> = (0..12).map(|s| image_for(&net.spec, s)).collect();
    let folding = FoldPlan::new().with("conv0", Fold::new(2, 2));
    let run = |replay| {
        run_images(
            &net,
            &images,
            &CompileOptions {
                schedule_replay: replay,
                layer_folding: folding.clone(),
                ..CompileOptions::default()
            },
        )
        .expect("run")
    };
    let on = run(true);
    let off = run(false);
    assert_eq!(on.logits, off.logits);
    assert_eq!(on.reports, off.reports);
    let d = on.reports[0].replay;
    assert_eq!(d.images_replayed, 0, "folded kernel must veto: {d:?}");
    assert_eq!(d.tape_len, 0, "vetoed graphs never record: {d:?}");
}

/// A parkable span-capable pass-through stage (the injector battery's
/// workhorse, with a replay token so un-wrapped copies don't veto).
struct SpanAffine {
    mul: i32,
    add: i32,
}

impl Kernel for SpanAffine {
    fn name(&self) -> &str {
        "affine"
    }
    fn tick(&mut self, io: &mut Io<'_>) -> Progress {
        if io.can_read(0) && io.can_write(0) {
            let v = io.read(0).expect("checked");
            io.write(0, v * self.mul + self.add);
            Progress::Busy
        } else if io.can_read(0) {
            Progress::Stalled
        } else {
            Progress::Idle
        }
    }
    fn wake_hint(&self) -> WakeHint {
        WakeHint::Parkable
    }
    fn span_hint(&self, _in_len: &[usize]) -> Option<SpanPlan> {
        Some(SpanPlan::new(u64::MAX, 0b1, 0b1))
    }
    fn run_span(&mut self, io: &mut SpanIo<'_>, n: u64) {
        for _ in 0..n {
            let v = io.pop(0);
            io.push(0, v * self.mul + self.add);
        }
    }
    fn replay_token(&self) -> Option<u64> {
        Some(0)
    }
}

/// Stall-injected pipelines with an armed marker: the injector has no
/// replay token, so the graph vetoes at the first boundary and keeps
/// stepping normally — identical outputs and reports either way.
#[test]
fn stall_injected_marker_graph_vetoes_replay() {
    let per_image = 16usize;
    let images = 12usize;
    let n = per_image * images;
    let build = |replay: bool| {
        let mut g = Graph::with_scheduler(SchedulerMode::ReadyList);
        g.set_schedule_replay(replay);
        let data: Vec<i32> = (0..n as i32).map(|v| v % per_image as i32).collect();
        let s0 = g.add_stream(StreamSpec::new("s0", 8, 8));
        g.add_kernel(
            Box::new(HostSource::new("src", data).with_period(per_image)),
            &[],
            &[s0],
        );
        let s1 = g.add_stream(StreamSpec::new("s1", 8, 8));
        g.add_kernel(
            StallInjector::wrap(Box::new(SpanAffine { mul: 3, add: 1 }), 0xFEED, 25),
            &[s0],
            &[s1],
        );
        let (sink, handle) = HostSink::new("dst", n);
        g.add_kernel(Box::new(sink.with_period(per_image)), &[s1], &[]);
        g.set_replay_marker(s1, per_image as u64);
        // Injected stalls can produce legitimate full-stall cycles, so
        // deadlock detection is off (the budget still bounds the run).
        let report = g.run_opts(4_000_000, false).expect("run");
        let diag = g.replay_diag();
        (handle.take(), report, diag)
    };
    let (out_on, rep_on, diag) = build(true);
    let (out_off, rep_off, _) = build(false);
    assert_eq!(out_on, out_off);
    assert_eq!(rep_on, rep_off);
    assert_eq!(diag.images_replayed, 0, "injector must veto: {diag:?}");
    assert_eq!(diag.tape_len, 0, "vetoed graphs never record: {diag:?}");
}

/// Mid-run knob flips: toggling `set_schedule_replay` (and macro-ticks) at
/// arbitrary segment boundaries mid-inference re-arms the state machine
/// and must be invisible — the stitched run equals one uninterrupted
/// replay-off run in logits, cumulative counters, and total cycles.
#[test]
fn mid_run_replay_switches_are_invisible() {
    let net = Network::random(models::test_net(8, 4, 2), 5);
    let images: Vec<_> = (0..16).map(|s| image_for(&net.spec, s + 100)).collect();
    let reference = run_replay(&net, &images, false);

    let compiled = compile(
        &net,
        &images,
        &CompileOptions {
            scheduler: SchedulerMode::ReadyList,
            macro_ticks: true,
            schedule_replay: true,
            ..CompileOptions::default()
        },
    );
    let mut graphs = compiled.graphs;
    assert_eq!(graphs.len(), 1);
    let g = &mut graphs[0];
    let segment = 700u64;
    let mut flips = 0u32;
    let mut total: u64 = 0;
    let report = loop {
        match g.run_opts(segment, false) {
            Ok(report) => break report,
            Err(_) => {
                total += segment;
                flips += 1;
                g.set_schedule_replay(flips % 2 == 0);
                if flips % 3 == 0 {
                    g.set_macro_ticks(flips % 2 == 1);
                }
                assert!(total < 50_000_000, "switch run wedged");
            }
        }
    };
    let logits = compiled.sink.take();
    let flat: Vec<i32> = reference.logits.iter().flatten().copied().collect();
    assert_eq!(logits, flat, "mid-switch logits diverged");
    let reference_report = &reference.reports[0];
    assert_eq!(report.kernels, reference_report.kernels);
    assert_eq!(report.streams, reference_report.streams);
    assert_eq!(total + report.cycles, reference_report.cycles);
    assert!(flips > 0, "segment too large to exercise any switch");
}

/// Replay diagnostics are observability, not behaviour: `CycleReport`
/// equality deliberately ignores them (so every differential battery can
/// compare replay-on vs replay-off reports bit-for-bit), and the counters
/// survive the re-arms that knob flips trigger instead of resetting.
#[test]
fn replay_diag_is_excluded_from_report_equality_and_survives_rearm() {
    let net = Network::random(models::test_net(8, 4, 2), 42);
    let images: Vec<_> = (0..24).map(|s| image_for(&net.spec, s)).collect();
    let on = run_replay(&net, &images, true);
    let off = run_replay(&net, &images, false);
    // The diags differ…
    assert_ne!(on.reports[0].replay, off.reports[0].replay);
    // …but the reports compare equal: diag is outside the equality.
    assert_eq!(on.reports, off.reports);

    // Counter persistence across a mid-run re-arm: flip the knob off and
    // back on after the run completes a stretch; the accumulated counters
    // must not reset (they describe the whole run).
    let compiled = compile(
        &net,
        &images,
        &CompileOptions {
            scheduler: SchedulerMode::ReadyList,
            schedule_replay: true,
            ..CompileOptions::default()
        },
    );
    let mut graphs = compiled.graphs;
    let g = &mut graphs[0];
    let mut banked = qnn::dfe::ReplayDiag::default();
    loop {
        match g.run_opts(40_000, false) {
            Ok(_) => break,
            Err(_) => {
                let d = g.replay_diag();
                assert!(
                    d.images_replayed >= banked.images_replayed
                        && d.guard_fallbacks >= banked.guard_fallbacks
                        && d.spans_bypassed >= banked.spans_bypassed,
                    "counters went backwards: {banked:?} -> {d:?}"
                );
                banked = d;
                // Re-arm (twice: off and back on). Counters must survive.
                g.set_schedule_replay(false);
                g.set_schedule_replay(true);
                let d = g.replay_diag();
                assert_eq!(d.images_replayed, banked.images_replayed);
                assert_eq!(d.guard_fallbacks, banked.guard_fallbacks);
                assert_eq!(d.spans_bypassed, banked.spans_bypassed);
            }
        }
    }
    compiled.sink.take();
}

/// `QNN_SCHED_REPLAY` is the documented selection mechanism; pin the
/// default (on) without mutating the process env under a threaded harness
/// (the parser's spellings are covered by dfe-platform unit tests).
#[test]
fn schedule_replay_env_default_is_on() {
    if std::env::var("QNN_SCHED_REPLAY").is_err() {
        assert!(qnn::dfe::schedule_replay_from_env());
        assert!(CompileOptions::default().schedule_replay);
    }
}
