//! Differential scheduler battery: the event-driven ready-list stepper
//! must be **bit-identical** to the dense reference stepper — same
//! logits, same `CycleReport`s (cycle counts, per-kernel busy/stall
//! tallies, per-stream pushed/max-occupancy) — across randomized
//! networks, multi-device lockstep cuts, streamed-parameter loading, and
//! graphs laced with random stall injection.
//!
//! This is the proof obligation behind making `ReadyList` the default:
//! every golden vector, determinism test, and flaky-threshold band was
//! calibrated under dense stepping and must carry over unchanged.
//!
//! Part of `./ci.sh soak` at `QNN_TEST_CASES=1024`.

use qnn::compiler::{run_images, CompileOptions, Fold, FoldPlan};
use qnn::dfe::{
    Graph, HostSink, HostSource, Io, Kernel, Progress, SchedulerMode, StallInjector, StreamSpec,
    WakeHint,
};
use qnn::nn::specgen::spec_strategy;
use qnn::nn::{models, Network, NetworkSpec};
use qnn::tensor::Tensor3;
use qnn_testkit::{prop_assert_eq, props};

fn image_for(spec: &NetworkSpec, seed: u64) -> Tensor3<i8> {
    Tensor3::from_fn(spec.input, |y, x, c| {
        ((seed as usize)
            .wrapping_mul(31)
            .wrapping_add(y * 131 + x * 17 + c * 7)
            .wrapping_mul(2654435761)
            >> 16) as i8
    })
}

/// Run the same workload under both schedulers — the ready-list side with
/// schedule replay both off and on — and assert logits and every
/// per-device report are identical.
fn assert_modes_agree(
    net: &Network,
    images: &[Tensor3<i8>],
    base: &CompileOptions,
) -> qnn_testkit::prop::CaseResult {
    let dense = run_images(
        net,
        images,
        &CompileOptions {
            scheduler: SchedulerMode::Dense,
            schedule_replay: false,
            ..base.clone()
        },
    )
    .expect("dense run");
    for replay in [false, true] {
        let ready = run_images(
            net,
            images,
            &CompileOptions {
                scheduler: SchedulerMode::ReadyList,
                schedule_replay: replay,
                ..base.clone()
            },
        )
        .expect("ready-list run");
        prop_assert_eq!(&dense.logits, &ready.logits);
        prop_assert_eq!(&dense.reports, &ready.reports);
    }
    Ok(())
}

props! {
    /// Single-device: random conv/pool/fc networks, 1–2 images, with the
    /// §III-B1a parameter-streaming path folded in (its loader phase has
    /// its own stall structure worth covering).
    #[test]
    fn single_device_reports_identical(
        spec in spec_strategy(),
        seed in 0u64..1000,
        n_images in 1usize..3,
        stream_params in 0u8..2,
    ) {
        let Some(spec) = spec else {
            return Ok(());
        };
        let net = Network::random(spec, seed);
        let images: Vec<_> =
            (0..n_images as u64).map(|i| image_for(&net.spec, seed + i)).collect();
        let base = CompileOptions {
            stream_parameters: stream_params == 1,
            ..CompileOptions::default()
        };
        assert_modes_agree(&net, &images, &base)?;
    }

    /// Multi-device lockstep: the same random networks cut across two
    /// devices at a random stage boundary. The lockstep executor calls
    /// `step_cycle` directly, so this exercises parking across
    /// channel-linked graphs (ingress/egress kernels must never park).
    #[test]
    fn multi_device_lockstep_reports_identical(
        spec in spec_strategy(),
        seed in 0u64..1000,
        cut in 1usize..4,
    ) {
        let Some(spec) = spec else {
            return Ok(());
        };
        let stage_device: Vec<usize> =
            (0..spec.stages.len()).map(|i| usize::from(i >= cut)).collect();
        let net = Network::random(spec, seed);
        let img = image_for(&net.spec, seed);
        let base = CompileOptions {
            stage_device: Some(stage_device),
            ..CompileOptions::default()
        };
        assert_modes_agree(&net, std::slice::from_ref(&img), &base)?;
    }

    /// Residual networks (split/add/skip-buffer kernels) under FIFO
    /// backpressure stress.
    #[test]
    fn residual_nets_reports_identical_under_fifo_stress(
        seed in 0u64..200,
        fifo in 4usize..64,
    ) {
        let net = Network::random(models::test_net(8, 4, 2), seed);
        let img = image_for(&net.spec, seed + 7);
        let base = CompileOptions { fifo_capacity: fifo, ..CompileOptions::default() };
        assert_modes_agree(&net, std::slice::from_ref(&img), &base)?;
    }

    /// A non-trivial folded design point on the full-featured residual
    /// test net: folded kernels move several elements per lane per cycle
    /// and veto span dispatch, so ready-list parking must stay bit-exact
    /// against dense stepping with multi-lane wakeups in play.
    #[test]
    fn folded_design_point_reports_identical(
        seed in 0u64..200,
        pe_bits in 0u32..3,
        simd_bits in 0u32..3,
        fifo in 16usize..128,
    ) {
        let net = Network::random(models::test_net(8, 4, 2), seed);
        let img = image_for(&net.spec, seed + 13);
        let folding = FoldPlan::new()
            .with("conv0", Fold::new(1 << pe_bits, 1 << simd_bits))
            .with("pool1", Fold::new(2, 1 << simd_bits))
            .with("res2.conv1", Fold::new(1 << simd_bits, 4))
            .with("res3.ds", Fold::new(2, 2))
            .with("fc5", Fold::new(4, 1 << pe_bits));
        let base = CompileOptions {
            layer_folding: folding,
            fifo_capacity: fifo,
            ..CompileOptions::default()
        };
        assert_modes_agree(&net, std::slice::from_ref(&img), &base)?;
    }

    /// StallInjector-laced pipelines: parkable stages interleaved with
    /// always-tick injector-wrapped stages. The injector's RNG advances on
    /// every tick, so report identity here proves parked cycles are
    /// *replayed*, not merely dropped — any skipped injector tick would
    /// shift the stall pattern and change every downstream cycle count.
    #[test]
    fn stall_injected_pipelines_reports_identical(
        n in 1usize..80,
        stages in 1usize..6,
        fifo in 1usize..8,
        pct in 0u8..50,
        seed in 0u64..10_000,
        wrap_mask in 0u32..64,
    ) {
        let build = |mode: SchedulerMode| {
            let mut g = Graph::with_scheduler(mode);
            let data: Vec<i32> = (0..n as i32).collect();
            let mut prev = g.add_stream(StreamSpec::new("s0", 8, fifo));
            g.add_kernel(Box::new(HostSource::new("src", data)), &[], &[prev]);
            for i in 0..stages {
                let next = g.add_stream(StreamSpec::new(format!("s{}", i + 1), 8, fifo));
                let k: Box<dyn Kernel> = Box::new(Affine { mul: 3, add: i as i32 });
                let k = if wrap_mask & (1 << i) != 0 {
                    StallInjector::wrap(k, seed.wrapping_add(i as u64), pct)
                } else {
                    k
                };
                g.add_kernel(k, &[prev], &[next]);
                prev = next;
            }
            let (sink, handle) = HostSink::new("dst", n);
            g.add_kernel(Box::new(sink), &[prev], &[]);
            // Injected stalls can produce legitimate full-stall cycles, so
            // deadlock detection is off (the budget still bounds the run).
            let report = g.run_opts(4_000_000, false).expect("run");
            (handle.take(), report)
        };
        let (out_d, rep_d) = build(SchedulerMode::Dense);
        let (out_r, rep_r) = build(SchedulerMode::ReadyList);
        prop_assert_eq!(&out_d, &out_r);
        prop_assert_eq!(&rep_d, &rep_r);
    }
}

/// A parkable pass-through stage for the injector battery: pure on
/// `Stalled`/`Idle`, so it honours the `WakeHint::Parkable` contract.
struct Affine {
    mul: i32,
    add: i32,
}

impl Kernel for Affine {
    fn name(&self) -> &str {
        "affine"
    }
    fn tick(&mut self, io: &mut Io<'_>) -> Progress {
        if io.can_read(0) && io.can_write(0) {
            let v = io.read(0).expect("checked");
            io.write(0, v * self.mul + self.add);
            Progress::Busy
        } else if io.can_read(0) {
            Progress::Stalled
        } else {
            Progress::Idle
        }
    }
    fn wake_hint(&self) -> WakeHint {
        WakeHint::Parkable
    }
}

/// Deterministic spot-check (not property-sized): the exact cycle count of
/// a full residual network is identical in both modes, so the EXPERIMENTS
/// flaky-threshold bands calibrated under dense stepping carry over.
#[test]
fn cycle_counts_identical_on_residual_network() {
    let net = Network::random(models::test_net(16, 4, 2), 3);
    let img = image_for(&net.spec, 11);
    let run = |scheduler| {
        run_images(
            &net,
            std::slice::from_ref(&img),
            &CompileOptions {
                scheduler,
                ..CompileOptions::default()
            },
        )
        .expect("run")
    };
    let dense = run(SchedulerMode::Dense);
    let ready = run(SchedulerMode::ReadyList);
    assert_eq!(dense.logits, ready.logits);
    assert_eq!(dense.reports, ready.reports);
    assert!(dense.cycles() > 0);
}

/// `QNN_SCHEDULER` is the documented selection mechanism; make sure the
/// value parser accepts what the README advertises.
#[test]
fn scheduler_mode_env_spellings() {
    // Can't mutate the process env safely under a threaded test harness;
    // the parser itself is covered via from_env's documented contract in
    // unit tests. Here we only pin the default.
    if std::env::var("QNN_SCHEDULER").is_err() {
        assert_eq!(SchedulerMode::default(), SchedulerMode::ReadyList);
    }
}
