//! Determinism guarantees of the serving runtime.
//!
//! The serving path adds host-side concurrency (batcher + replica worker
//! threads) on top of the lockstep device executor; these tests pin down
//! that none of it leaks into results. A fixed request trace must produce
//! (a) bit-identical logits to the direct `run_images` path with one
//! replica, and (b) identical responses across repeated runs with several
//! replicas, even though batch boundaries and replica assignment are
//! timing-dependent.

use qnn::compiler::{run_images, CompileOptions};
use qnn::nn::{models, Network};
// The deprecated closure shim is exercised deliberately: this suite is its
// remaining coverage until removal (new code: Server::builder, DESIGN.md §7).
#[allow(deprecated)]
use qnn::serve::serve;
use qnn::serve::{ServerConfig, Ticket};
use qnn::tensor::{Shape3, Tensor3};
use qnn_testkit::Rng;

fn trace(n: usize) -> Vec<Tensor3<i8>> {
    let mut rng = Rng::seed_from_u64(0xD57);
    (0..n)
        .map(|_| {
            Tensor3::from_fn(Shape3::square(8, 3), |_, _, _| rng.gen_range(-127i8..=127))
        })
        .collect()
}

#[allow(deprecated)]
fn serve_trace(net: &Network, images: &[Tensor3<i8>], config: &ServerConfig) -> Vec<Vec<i32>> {
    let (logits, report) = serve(net, config, |client| {
        let tickets: Vec<Ticket> =
            images.iter().map(|i| client.submit(i.clone()).expect("admitted")).collect();
        tickets.into_iter().map(|t| t.wait().expect("answered").logits).collect::<Vec<_>>()
    });
    assert_eq!(report.completed, images.len() as u64);
    logits
}

/// Every dispatch tier must serve the same bits: per-element, span
/// dispatch, and span dispatch with schedule replay armed. The direct
/// reference is pinned to per-element dispatch so a span-crediting or
/// tape-replay bug in the serving path cannot hide by also infecting the
/// reference.
fn both_dispatch_modes() -> [CompileOptions; 3] {
    [(false, false), (true, false), (true, true)].map(|(macro_ticks, schedule_replay)| {
        CompileOptions {
            macro_ticks,
            schedule_replay,
            ..CompileOptions::default()
        }
    })
}

#[test]
fn one_replica_trace_matches_direct_run_devices_path_bit_for_bit() {
    let net = Network::random(models::test_net(8, 4, 2), 21);
    let images = trace(6);
    let direct = run_images(
        &net,
        &images,
        &CompileOptions {
            macro_ticks: false,
            schedule_replay: false,
            ..CompileOptions::default()
        },
    )
    .expect("direct");
    for compile in both_dispatch_modes() {
        // max_batch covers the trace, so the single replica sees the very
        // same batch the direct path compiled.
        let config = ServerConfig {
            replicas: 1,
            max_batch: images.len(),
            flush_deadline: std::time::Duration::from_secs(10),
            compile: compile.clone(),
            ..ServerConfig::default()
        };
        assert_eq!(
            serve_trace(&net, &images, &config),
            direct.logits,
            "macro_ticks={}/replay={} diverged from the per-element direct path",
            compile.macro_ticks,
            compile.schedule_replay
        );
    }
}

#[test]
fn multi_replica_serving_is_identical_across_ten_runs() {
    // Batch composition and replica assignment vary run to run with the
    // thread scheduler; the logits must not — under either dispatch mode.
    let net = Network::random(models::test_net(8, 4, 2), 22);
    let images = trace(8);
    let expected: Vec<Vec<i32>> = images.iter().map(|i| net.forward(i).logits).collect();
    for compile in both_dispatch_modes() {
        let config = ServerConfig {
            replicas: 3,
            max_batch: 2,
            compile: compile.clone(),
            ..ServerConfig::default()
        };
        let reference = serve_trace(&net, &images, &config);
        assert_eq!(
            reference, expected,
            "macro_ticks={}/replay={}: serving diverged from the interpreter",
            compile.macro_ticks,
            compile.schedule_replay
        );
        for run in 1..5 {
            assert_eq!(
                serve_trace(&net, &images, &config),
                reference,
                "macro_ticks={}/replay={}: run {run} diverged",
                compile.macro_ticks,
                compile.schedule_replay
            );
        }
    }
}
