//! Multi-model serving guarantees: registry isolation, hot weight-swap
//! atomicity, and the deadline-shedding accounting ledger.
//!
//! The multi-model server adds a registry, per-model replica pools, and a
//! two-level priority scheduler on top of the single-model runtime; these
//! tests pin down that none of it weakens the repo's core invariant —
//! every answered request is bit-identical to direct execution of the
//! *exact* weight version its response claims, no matter how batches,
//! pools, classes, and publishes interleave.

use qnn::compiler::{run_images, CompileOptions};
use qnn::nn::{models, Network};
use qnn::serve::{
    AdmissionPolicy, Dropped, Priority, Server, ServerConfig, SubmitError, SubmitOptions,
};
use qnn::tensor::{Shape3, Tensor3};
use qnn_testkit::{prop_assert, prop_assert_eq, props, Rng};
use std::collections::HashMap;
use std::time::Duration;

fn trace(seed: u64, n: usize) -> Vec<Tensor3<i8>> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| Tensor3::from_fn(Shape3::square(8, 3), |_, _, _| rng.gen_range(-127i8..=127)))
        .collect()
}

/// Both macro-tick settings must serve the same bits; direct references
/// are pinned to per-element dispatch so a span-crediting bug in the
/// serving path cannot hide by also infecting the reference.
fn both_dispatch_modes() -> [CompileOptions; 2] {
    [false, true].map(|macro_ticks| CompileOptions {
        macro_ticks,
        ..CompileOptions::default()
    })
}

/// Two models behind one server answer exactly what each would answer
/// behind its own dedicated single-model server — the pools share nothing
/// but the submission queue. Parameterized over both dispatch modes.
#[test]
fn two_models_served_concurrently_match_single_model_baselines() {
    let alpha = Network::random(models::test_net(8, 4, 2), 31);
    let beta = Network::random(models::test_net(8, 6, 3), 32);
    let alpha_trace = trace(0xA1FA, 6);
    let beta_trace = trace(0xBE7A, 6);
    let element = CompileOptions { macro_ticks: false, ..CompileOptions::default() };
    let alpha_direct = run_images(&alpha, &alpha_trace, &element).expect("alpha direct");
    let beta_direct = run_images(&beta, &beta_trace, &element).expect("beta direct");

    for compile in both_dispatch_modes() {
        let mt = compile.macro_ticks;
        let server = Server::builder()
            .config(ServerConfig { replicas: 2, max_batch: 3, compile, ..ServerConfig::default() })
            .model("alpha", &alpha)
            .model("beta", &beta)
            .start()
            .expect("valid server");
        assert_eq!(server.models(), vec!["alpha".to_string(), "beta".to_string()]);
        let client = server.client();

        // Interleave the two traces through one client so batches of both
        // models are in flight simultaneously.
        let tickets: Vec<_> = alpha_trace
            .iter()
            .zip(&beta_trace)
            .flat_map(|(a, b)| {
                [
                    client
                        .submit_with(a.clone(), SubmitOptions::model("alpha"))
                        .expect("admitted"),
                    client
                        .submit_with(b.clone(), SubmitOptions::model("beta"))
                        .expect("admitted"),
                ]
            })
            .collect();
        let responses: Vec<_> =
            tickets.into_iter().map(|t| t.wait().expect("answered")).collect();

        for (i, pair) in responses.chunks(2).enumerate() {
            assert_eq!(pair[0].model, "alpha");
            assert_eq!(
                pair[0].logits, alpha_direct.logits[i],
                "macro_ticks={mt}: alpha image {i} diverged"
            );
            assert_eq!(pair[1].model, "beta");
            assert_eq!(
                pair[1].logits, beta_direct.logits[i],
                "macro_ticks={mt}: beta image {i} diverged"
            );
        }

        let report = server.shutdown();
        assert_eq!(report.completed, 12);
        assert_eq!(report.replicas, 4, "two pools of two replicas each");
        assert_eq!(report.model("alpha").map(|m| m.completed), Some(6));
        assert_eq!(report.model("beta").map(|m| m.completed), Some(6));
    }
}

/// Hot weight swap, quiesced: the cohort submitted before the publish is
/// bit-identical to direct execution on the old weights, the cohort after
/// it to direct execution on the new ones.
#[test]
fn weight_swap_cohorts_each_match_direct_execution() {
    let spec = models::test_net(8, 4, 2);
    let old_net = Network::random(spec.clone(), 41);
    let new_net = Network::random(spec, 42);
    let images = trace(0x5A4B, 6);
    let element = CompileOptions { macro_ticks: false, ..CompileOptions::default() };
    let old_direct = run_images(&old_net, &images, &element).expect("old direct");
    let new_direct = run_images(&new_net, &images, &element).expect("new direct");
    assert_ne!(old_direct.logits, new_direct.logits, "seeds must give distinct weights");

    for compile in both_dispatch_modes() {
        let mt = compile.macro_ticks;
        let server = Server::builder()
            .config(ServerConfig { replicas: 2, max_batch: 2, compile, ..ServerConfig::default() })
            .model("m", &old_net)
            .start()
            .expect("valid server");
        let client = server.client();
        assert_eq!(server.registry().version("m"), Some(0));

        let submit_all = |imgs: &[Tensor3<i8>]| -> Vec<_> {
            imgs.iter()
                .map(|i| client.submit(i.clone()).expect("admitted"))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|t| t.wait().expect("answered"))
                .collect()
        };

        let old_cohort = submit_all(&images);
        let version = server.publish_weights("m", new_net.clone()).expect("spec matches");
        assert_eq!(version, 1);
        assert_eq!(server.registry().version("m"), Some(1));
        let new_cohort = submit_all(&images);

        for (i, r) in old_cohort.iter().enumerate() {
            assert_eq!(r.stats.weight_version, 0, "old cohort ran pre-publish weights");
            assert_eq!(
                r.logits, old_direct.logits[i],
                "macro_ticks={mt}: old cohort image {i} diverged"
            );
        }
        for (i, r) in new_cohort.iter().enumerate() {
            assert_eq!(r.stats.weight_version, 1, "new cohort ran post-publish weights");
            assert_eq!(
                r.logits, new_direct.logits[i],
                "macro_ticks={mt}: new cohort image {i} diverged"
            );
        }

        let report = server.shutdown();
        assert_eq!(report.model("m").map(|m| m.weight_publishes), Some(1));
    }
}

/// Hot weight swap, racing: publishes land *while* batches are in flight.
/// Every response must still be bit-identical to the interpreter running
/// the exact version its `weight_version` claims, and no batch may mix
/// versions.
#[test]
fn racing_publish_never_mixes_weight_versions_within_a_batch() {
    let spec = models::test_net(8, 4, 2);
    let versions: Vec<Network> =
        (0..3).map(|v| Network::random(spec.clone(), 50 + v)).collect();
    let images = trace(0xACE5, 18);

    for compile in both_dispatch_modes() {
        let mt = compile.macro_ticks;
        let server = Server::builder()
            .config(ServerConfig { replicas: 2, max_batch: 4, compile, ..ServerConfig::default() })
            .model("m", &versions[0])
            .start()
            .expect("valid server");
        let client = server.client();

        // Publish twice mid-stream with no quiescing: in-flight batches keep
        // the snapshot they were flushed with.
        let mut tickets = Vec::new();
        for (i, img) in images.iter().enumerate() {
            if i == 6 {
                server.publish_weights("m", versions[1].clone()).expect("publish v1");
            }
            if i == 12 {
                server.publish_weights("m", versions[2].clone()).expect("publish v2");
            }
            tickets.push(client.submit(img.clone()).expect("admitted"));
        }
        let responses: Vec<_> =
            tickets.into_iter().map(|t| t.wait().expect("answered")).collect();

        let mut batch_versions: HashMap<u64, u64> = HashMap::new();
        for (i, r) in responses.iter().enumerate() {
            let v = r.stats.weight_version as usize;
            assert!(v < versions.len(), "unknown weight version {v}");
            // Bit-identity against the interpreter running the claimed version.
            let expect = versions[v].forward(&images[i]).logits;
            assert_eq!(
                r.logits, expect,
                "macro_ticks={mt}: image {i} diverged from claimed version {v}"
            );
            // Swap atomicity: one batch, one version.
            if let Some(prev) = batch_versions.insert(r.stats.batch_id, r.stats.weight_version)
            {
                assert_eq!(
                    prev, r.stats.weight_version,
                    "batch {} mixed weight versions",
                    r.stats.batch_id
                );
            }
        }

        let report = server.shutdown();
        assert_eq!(report.completed, images.len() as u64);
        assert_eq!(report.model("m").map(|m| m.weight_publishes), Some(2));
    }
}

props! {
    /// The admission ledger is a partition: across random traffic mixes
    /// (priorities, deadlines, queue pressure), every submission attempt
    /// is accounted exactly once — completed, rejected at admission, or
    /// shed at dispatch — and only zero-deadline requests ever shed.
    #[test]
    fn deadline_shedding_accounting_identity(
        n in 1usize..24,
        replicas in 1usize..4,
        max_batch in 1usize..6,
        queue_depth in 1usize..5,
        seed in 0u64..1_000_000,
        macro_ticks in 0u8..2,
    ) {
        let net = Network::random(models::test_net(8, 2, 1), 7);
        let config = ServerConfig::builder()
            .replicas(replicas)
            .max_batch(max_batch)
            .queue_depth(queue_depth)
            .compile(CompileOptions {
                macro_ticks: macro_ticks == 1,
                ..CompileOptions::default()
            })
            .admission(AdmissionPolicy::Reject)
            .flush_deadline(Duration::from_micros(200))
            .interactive_flush_deadline(Duration::from_micros(50))
            .build()
            .expect("valid config");
        let server = Server::builder()
            .config(config)
            .model("m", &net)
            .start()
            .expect("valid server");
        let client = server.client();

        let mut rng = Rng::seed_from_u64(seed);
        let mut tickets = Vec::new();
        let mut client_rejected = 0u64;
        for i in 0..n {
            let img = Tensor3::from_fn(Shape3::square(8, 3), |y, x, c| {
                ((seed as usize).wrapping_add(i * 131 + y * 31 + x * 7 + c) % 255) as i8
            });
            let priority = if rng.gen_bool(0.5) { Priority::Interactive } else { Priority::Batch };
            // Zero-budget requests are sheddable (any queueing at all blows
            // the budget); one-minute budgets must never shed in a test run.
            let deadline = match rng.gen_range(0u32..3) {
                0 => None,
                1 => Some(Duration::ZERO),
                _ => Some(Duration::from_secs(60)),
            };
            let mut opts = SubmitOptions::default().priority(priority);
            if let Some(d) = deadline {
                opts = opts.deadline(d);
            }
            match client.submit_with(img, opts) {
                Ok(t) => tickets.push((t, deadline)),
                Err(SubmitError::QueueFull(_)) => client_rejected += 1,
                Err(e) => return Err(qnn_testkit::prop::CaseError::Fail(
                    format!("unexpected submit error: {e}"),
                )),
            }
        }

        let mut client_completed = 0u64;
        let mut client_shed = 0u64;
        for (t, deadline) in tickets {
            match t.wait() {
                Ok(_) => client_completed += 1,
                Err(Dropped::Deadline) => {
                    prop_assert!(
                        deadline == Some(Duration::ZERO),
                        "a request with budget {deadline:?} was shed"
                    );
                    client_shed += 1;
                }
                Err(Dropped::Stopped) => {
                    prop_assert!(false, "server stopped before draining an admitted request");
                }
            }
        }

        let report = server.shutdown();
        prop_assert_eq!(report.submitted, n as u64, "every attempt reached admission");
        prop_assert_eq!(
            report.completed + report.rejected + report.shed,
            report.submitted,
            "the admission ledger must partition"
        );
        prop_assert_eq!(report.completed, client_completed);
        prop_assert_eq!(report.rejected, client_rejected);
        prop_assert_eq!(report.shed, client_shed);
    }
}
