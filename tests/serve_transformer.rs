//! Mixed CNN + transformer serving: a residual CNN and a two-encoder
//! transformer registered behind one server, with interleaved traffic.
//!
//! The transformer graph vetoes span promises and schedule replay in its
//! attention/LayerNorm kernels while the CNN graph keeps both, so this is
//! the one place the two dispatch regimes share a process: each model's
//! replicas must stay on their own regime with no cross-talk, every
//! response bit-identical to direct execution, and the admission ledger
//! balanced.

use qnn::compiler::{run_images, CompileOptions};
use qnn::nn::{models, Network};
use qnn::serve::{Server, ServerConfig, SubmitOptions};
use qnn::tensor::{Shape3, Tensor3};
use qnn_testkit::Rng;

fn trace(shape: Shape3, seed: u64, n: usize) -> Vec<Tensor3<i8>> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n).map(|_| Tensor3::from_fn(shape, |_, _, _| rng.gen_range(-127i8..=127))).collect()
}

fn cnn() -> Network {
    Network::random(models::test_net(8, 4, 2), 61)
}

fn transformer() -> Network {
    Network::random(models::tiny_transformer(6, 2, 3, 5, 2, 8), 62)
}

/// Interleaved CNN and transformer requests through one server, under
/// both macro-tick settings: responses bit-identical to direct execution,
/// ledger balanced across both models.
#[test]
fn mixed_cnn_and_transformer_traffic_matches_direct_execution() {
    let cnn_net = cnn();
    let tf_net = transformer();
    let cnn_trace = trace(cnn_net.spec.input, 0xC44, 5);
    let tf_trace = trace(tf_net.spec.input, 0x7F0, 5);
    let element = CompileOptions { macro_ticks: false, ..CompileOptions::default() };
    let cnn_direct = run_images(&cnn_net, &cnn_trace, &element).expect("cnn direct");
    let tf_direct = run_images(&tf_net, &tf_trace, &element).expect("transformer direct");

    for macro_ticks in [false, true] {
        let compile = CompileOptions { macro_ticks, ..CompileOptions::default() };
        let server = Server::builder()
            .config(ServerConfig {
                replicas: 2,
                max_batch: 3,
                compile,
                ..ServerConfig::default()
            })
            .model("cnn", &cnn_net)
            .model("transformer", &tf_net)
            .start()
            .expect("valid server");
        let client = server.client();

        let tickets: Vec<_> = cnn_trace
            .iter()
            .zip(&tf_trace)
            .flat_map(|(c, t)| {
                [
                    client
                        .submit_with(c.clone(), SubmitOptions::model("cnn"))
                        .expect("admitted"),
                    client
                        .submit_with(t.clone(), SubmitOptions::model("transformer"))
                        .expect("admitted"),
                ]
            })
            .collect();
        let responses: Vec<_> =
            tickets.into_iter().map(|t| t.wait().expect("answered")).collect();

        for (i, pair) in responses.chunks(2).enumerate() {
            assert_eq!(pair[0].model, "cnn");
            assert_eq!(
                pair[0].logits, cnn_direct.logits[i],
                "macro_ticks={macro_ticks}: cnn image {i} diverged"
            );
            assert_eq!(pair[1].model, "transformer");
            assert_eq!(
                pair[1].logits, tf_direct.logits[i],
                "macro_ticks={macro_ticks}: transformer image {i} diverged"
            );
        }

        let report = server.shutdown();
        assert_eq!(report.submitted, 10);
        assert_eq!(report.completed, 10);
        assert_eq!(report.completed + report.rejected + report.shed, report.submitted);
        assert_eq!(report.model("cnn").map(|m| m.completed), Some(5));
        assert_eq!(report.model("transformer").map(|m| m.completed), Some(5));
    }
}

/// Two identical serving runs of the same mixed trace return identical
/// response streams — scheduling noise between the CNN's replay-capable
/// replicas and the transformer's live-planned ones must never reach the
/// answer bits.
#[test]
fn mixed_serving_is_deterministic_across_runs() {
    let cnn_net = cnn();
    let tf_net = transformer();
    let cnn_trace = trace(cnn_net.spec.input, 0xD311, 4);
    let tf_trace = trace(tf_net.spec.input, 0xD312, 4);

    let run = || {
        let server = Server::builder()
            .config(ServerConfig { replicas: 2, max_batch: 2, ..ServerConfig::default() })
            .model("cnn", &cnn_net)
            .model("transformer", &tf_net)
            .start()
            .expect("valid server");
        let client = server.client();
        let tickets: Vec<_> = cnn_trace
            .iter()
            .zip(&tf_trace)
            .flat_map(|(c, t)| {
                [
                    client
                        .submit_with(c.clone(), SubmitOptions::model("cnn"))
                        .expect("admitted"),
                    client
                        .submit_with(t.clone(), SubmitOptions::model("transformer"))
                        .expect("admitted"),
                ]
            })
            .collect();
        let logits: Vec<Vec<i32>> =
            tickets.into_iter().map(|t| t.wait().expect("answered").logits).collect();
        let report = server.shutdown();
        assert_eq!(report.completed + report.rejected + report.shed, report.submitted);
        logits
    };

    assert_eq!(run(), run());
}
