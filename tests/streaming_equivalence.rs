//! The central correctness property of the reproduction: the streaming DFE
//! pipeline computes exactly what the reference interpreter computes, for
//! every layer type, bit width, and execution strategy.

use qnn::compiler::{run_image, run_images, CompileOptions};
use qnn::data::Dataset;
use qnn::nn::{models, Network};
use qnn::tensor::{Shape3, Tensor3};
use qnn_testkit::Rng;

fn image(side: usize, seed: u64) -> Tensor3<i8> {
    let mut rng = Rng::seed_from_u64(seed);
    Tensor3::from_fn(Shape3::square(side, 3), |_, _, _| rng.gen_range(-127i8..=127))
}

#[test]
fn test_net_is_bit_exact_across_seeds() {
    for seed in 0..6u64 {
        let net = Network::random(models::test_net(8, 4, 2), seed);
        let img = image(8, seed + 100);
        let sim = run_image(&net, &img).expect("sim");
        assert_eq!(sim.logits[0], net.forward(&img).logits, "seed {seed}");
    }
}

#[test]
fn vgg_like_32_is_bit_exact() {
    let net = Network::random(models::vgg_like(32, 10, 2), 77);
    let img = Dataset { name: "t", side: 32, classes: 10 }.image(0);
    let sim = run_image(&net, &img).expect("sim");
    assert_eq!(sim.logits[0], net.forward(&img).logits);
}

#[test]
fn binary_activations_are_bit_exact() {
    let net = Network::random(models::vgg_like(32, 10, 1), 78);
    let img = image(32, 5);
    let sim = run_image(&net, &img).expect("sim");
    assert_eq!(sim.logits[0], net.forward(&img).logits);
}

#[test]
fn consecutive_images_stay_aligned() {
    // Multi-image streaming exercises every kernel's reset path.
    let net = Network::random(models::test_net(12, 5, 2), 3);
    let imgs: Vec<_> = (0..4).map(|s| image(12, s)).collect();
    let sim = run_images(&net, &imgs, &CompileOptions::default()).expect("sim");
    for (i, img) in imgs.iter().enumerate() {
        assert_eq!(sim.logits[i], net.forward(img).logits, "image {i}");
    }
}

#[test]
fn multi_device_execution_matches_single_device() {
    // Force a two-device split at an arbitrary stage boundary and run the
    // threaded executor: results must be identical to the single-DFE run.
    let spec = models::test_net(8, 4, 2);
    let cut = spec.stages.len() / 2;
    let stage_device: Vec<usize> =
        (0..spec.stages.len()).map(|i| usize::from(i >= cut)).collect();
    let net = Network::random(spec, 21);
    let img = image(8, 9);

    let single = run_image(&net, &img).expect("single-DFE");
    let multi = run_images(
        &net,
        std::slice::from_ref(&img),
        &CompileOptions { stage_device: Some(stage_device), ..CompileOptions::default() },
    )
    .expect("multi-DFE");
    assert_eq!(single.logits, multi.logits);
    assert_eq!(multi.reports.len(), 2);
}

#[test]
fn three_device_vgg_matches_reference() {
    let spec = models::vgg_like(32, 10, 2);
    let n = spec.stages.len();
    let stage_device: Vec<usize> = (0..n).map(|i| (3 * i / n).min(2)).collect();
    let net = Network::random(spec, 31);
    let img = image(32, 8);
    let multi = run_images(
        &net,
        std::slice::from_ref(&img),
        &CompileOptions { stage_device: Some(stage_device), ..CompileOptions::default() },
    )
    .expect("multi-DFE");
    assert_eq!(multi.logits[0], net.forward(&img).logits);
    assert_eq!(multi.reports.len(), 3);
}

#[test]
fn smaller_fifos_change_timing_not_results() {
    let net = Network::random(models::test_net(8, 4, 2), 55);
    let img = image(8, 2);
    let tight = run_images(
        &net,
        std::slice::from_ref(&img),
        &CompileOptions { fifo_capacity: 8, ..CompileOptions::default() },
    )
    .expect("tight-FIFO run");
    let roomy = run_images(
        &net,
        std::slice::from_ref(&img),
        &CompileOptions { fifo_capacity: 4096, ..CompileOptions::default() },
    )
    .expect("roomy-FIFO run");
    assert_eq!(tight.logits, roomy.logits);
    // Tighter FIFOs can only slow the pipeline down.
    assert!(tight.cycles() >= roomy.cycles());
}
