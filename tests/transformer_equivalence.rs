//! Transformer equivalence battery: the streaming encoder lowering —
//! Q/K/V projections, per-head fan-out, attention tile engines, concat,
//! output projection, residual adds and LayerNorm — must match the
//! reference interpreter bit for bit, across a geometry grid, randomized
//! specs, stall injection, and both macro-tick settings.
//!
//! The numeric core (`qnn_quant::attention`) is shared between the two
//! paths, so these tests pin the *plumbing*: stream ordering through the
//! branching subgraph, head slicing, skip alignment, and the gather/emit
//! state machines under backpressure and arbitrary stall patterns.

use qnn::compiler::{run_images, CompileOptions};
use qnn::nn::specgen::{encoder_spec_strategy, random_encoder_spec};
use qnn::nn::{models, Network, NetworkSpec};
use qnn::tensor::Tensor3;
use qnn_testkit::{prop_assert_eq, props};

fn image_for(spec: &NetworkSpec, seed: u64) -> Tensor3<i8> {
    Tensor3::from_fn(spec.input, |y, x, c| {
        ((seed as usize)
            .wrapping_mul(31)
            .wrapping_add(y * 131 + x * 17 + c * 7)
            .wrapping_mul(2654435761)
            >> 16) as i8
    })
}

/// Deterministic grid over heads × head_dim × seq_len × FFN × act_bits,
/// each point checked under both macro-tick settings. Covers the corners
/// the random battery may miss (single-token sequences, single head,
/// 1-bit codes) with a stable, always-run set.
#[test]
fn encoder_grid_sweep_is_bit_exact_in_both_dispatch_modes() {
    let mut checked = 0;
    for heads in [1usize, 2, 4] {
        for head_dim in [1usize, 3] {
            for seq_len in [1usize, 2, 5] {
                for ff_hidden in [0usize, 6] {
                    for act_bits in [1u32, 2] {
                        let seed = (heads * 1009
                            + head_dim * 101
                            + seq_len * 11
                            + ff_hidden
                            + act_bits as usize) as u64;
                        let spec =
                            random_encoder_spec(seq_len, heads, head_dim, ff_hidden, act_bits);
                        let net = Network::random(spec, seed);
                        let img = image_for(&net.spec, seed);
                        let expect = net.forward(&img).logits;
                        for macro_ticks in [false, true] {
                            let opts =
                                CompileOptions { macro_ticks, ..CompileOptions::default() };
                            let sim = run_images(&net, std::slice::from_ref(&img), &opts)
                                .expect("sim");
                            assert_eq!(
                                sim.logits[0], expect,
                                "h{heads} d{head_dim} s{seq_len} ff{ff_hidden} \
                                 b{act_bits} macro={macro_ticks}"
                            );
                        }
                        checked += 1;
                    }
                }
            }
        }
    }
    assert_eq!(checked, 72);
}

/// A stream of images through the two-encoder transformer: the attention
/// tile engines and LayerNorm gatherers must reset cleanly between images
/// (any leftover tile state would skew every following logit).
#[test]
fn transformer_image_stream_is_bit_exact() {
    let net = Network::random(models::tiny_transformer(6, 2, 3, 5, 2, 8), 17);
    let images: Vec<_> = (0..4).map(|s| image_for(&net.spec, 900 + s)).collect();
    let sim = run_images(&net, &images, &CompileOptions::default()).expect("sim");
    for (i, img) in images.iter().enumerate() {
        assert_eq!(sim.logits[i], net.forward(img).logits, "image {i}");
    }
}

props! {
    /// Randomized encoder specs stay bit-exact under random stall
    /// injection — every kernel's handshake must tolerate arbitrary
    /// flow-control timing — in both macro-tick modes.
    #[test]
    fn random_encoders_bit_exact_under_stall_injection(
        spec in encoder_spec_strategy(),
        seed in 0u64..1000,
        pct in 0u8..40,
        macro_ticks in 0u8..2,
    ) {
        let net = Network::random(spec, seed);
        let img = image_for(&net.spec, seed);
        let expect = net.forward(&img).logits;
        let opts = CompileOptions {
            stall_injection: Some((seed ^ 0xA77E_1710, pct)),
            macro_ticks: macro_ticks == 1,
            ..CompileOptions::default()
        };
        let sim = run_images(&net, std::slice::from_ref(&img), &opts).expect("sim");
        prop_assert_eq!(&sim.logits[0], &expect);
    }

    /// Randomized encoder specs under FIFO starvation: tiny inter-kernel
    /// FIFOs exercise backpressure through the branching subgraph (the
    /// structural skip buffers keep their sequence-deep capacity).
    #[test]
    fn random_encoders_bit_exact_under_fifo_stress(
        spec in encoder_spec_strategy(),
        seed in 0u64..500,
        fifo in 4usize..64,
    ) {
        let net = Network::random(spec, seed);
        let img = image_for(&net.spec, seed + 7);
        let expect = net.forward(&img).logits;
        let opts = CompileOptions { fifo_capacity: fifo, ..CompileOptions::default() };
        let sim = run_images(&net, std::slice::from_ref(&img), &opts).expect("sim");
        prop_assert_eq!(&sim.logits[0], &expect);
    }
}
